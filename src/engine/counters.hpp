// Names of the session counters an Engine accumulates on its PhaseReport —
// shared constants so the analyze, solve and factor paths (and any test or
// report consumer) land on the same totals. The congruence-cache counter
// names live with their producer in src/bem/analysis.hpp.
#pragma once

#include "src/common/phase_report.hpp"
#include "src/la/tile_store.hpp"

namespace ebem::engine {

/// Incremented once per successful direct (Cholesky) factorization —
/// Engine::analyze/solve with SolverKind::kCholesky, and Engine::factor.
inline constexpr const char* kFactorizationsCounter = "Cholesky factorizations";

/// Incremented per right-hand side answered by a FactoredSystem (solve adds
/// one, solve_many adds the block width). Together with
/// kFactorizationsCounter this lets a session assert "k solves, one
/// factorization".
inline constexpr const char* kRhsSolvedCounter = "Right-hand sides solved";

/// Tile-pager counters, summed over the matrix store and the Cholesky
/// factor's working store of each run. All stay zero for fully resident
/// (in-memory) storage; with an ExecutionConfig::storage residency budget
/// they record how hard the out-of-core path worked — evictions, dirty
/// tiles written to the spill file, and tiles read back on checkout.
inline constexpr const char* kTileEvictionsCounter = "Tile evictions";
inline constexpr const char* kTileSpillWritesCounter = "Tile spill writes";
inline constexpr const char* kTileSpillReadsCounter = "Tile spill read-backs";

/// Fold one store's pager counters into a report. Fully resident stores
/// contribute nothing, so in-memory sessions keep a clean Table 6.1. Shared
/// by the blocking Engine paths and the scheduler's staged pipeline.
inline void add_tile_counters(PhaseReport& report, const la::TileStoreStats& stats) {
  if (stats.evictions == 0 && stats.spill_writes == 0 && stats.spill_reads == 0) return;
  report.add_counter(kTileEvictionsCounter, static_cast<double>(stats.evictions));
  report.add_counter(kTileSpillWritesCounter, static_cast<double>(stats.spill_writes));
  report.add_counter(kTileSpillReadsCounter, static_cast<double>(stats.spill_reads));
}

}  // namespace ebem::engine

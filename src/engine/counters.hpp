// Names of the session counters an Engine accumulates on its PhaseReport —
// shared constants so the analyze, solve and factor paths (and any test or
// report consumer) land on the same totals. The congruence-cache counter
// names live with their producer in src/bem/analysis.hpp.
#pragma once

namespace ebem::engine {

/// Incremented once per successful direct (Cholesky) factorization —
/// Engine::analyze/solve with SolverKind::kCholesky, and Engine::factor.
inline constexpr const char* kFactorizationsCounter = "Cholesky factorizations";

/// Incremented per right-hand side answered by a FactoredSystem (solve adds
/// one, solve_many adds the block width). Together with
/// kFactorizationsCounter this lets a session assert "k solves, one
/// factorization".
inline constexpr const char* kRhsSolvedCounter = "Right-hand sides solved";

}  // namespace ebem::engine

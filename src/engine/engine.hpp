// engine::Engine — the long-lived execution context of the library.
//
// The paper's CAD framing is many nearby analyses in a loop: a designer (or
// the automated ladder of cad::search_design) evaluates candidate after
// candidate against the same soil and the same numerics. An Engine owns
// everything those runs should share instead of re-creating per call:
//
//   * one par::ThreadPool, spawned once and reused by assembly and solve;
//   * one warm bem::CongruenceCache, so candidate k replays the elemental
//     blocks candidates 1..k-1 already integrated (the cache is dropped
//     automatically when the physics fingerprint changes);
//   * one PhaseReport sink accumulating Table 6.1 style timings and the
//     named counters (cache hits, factorizations, solved right-hand sides)
//     across the whole session.
//
// Configuration happens once, through a validated engine::ExecutionConfig.
// The bem:: free functions remain as serial shims; anything that runs more
// than one analysis should hold an Engine (or an engine::Study bound to
// one) instead.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/bem/analysis.hpp"
#include "src/bem/assembly.hpp"
#include "src/bem/congruence_cache.hpp"
#include "src/bem/solver.hpp"
#include "src/common/phase_report.hpp"
#include "src/engine/execution_config.hpp"
#include "src/engine/factored_system.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::engine {

class Engine {
 public:
  /// Validates the config (throws ebem::InvalidArgument on contradictions)
  /// and spawns the worker pool / cache up front.
  explicit Engine(const ExecutionConfig& config = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] const ExecutionConfig& config() const { return config_; }
  [[nodiscard]] std::size_t num_threads() const { return threads_; }

  /// Shared worker pool; null when the engine runs serially.
  [[nodiscard]] par::ThreadPool* pool() { return pool_; }

  /// Warm congruence cache; null when disabled by the config.
  [[nodiscard]] bem::CongruenceCache* cache() { return cache_ ? &*cache_ : nullptr; }
  [[nodiscard]] bem::CongruenceCacheStats cache_stats() const {
    return cache_ ? cache_->stats() : bem::CongruenceCacheStats{};
  }
  /// Drop all warm cache entries (the physics-fingerprint guard calls this
  /// automatically; manual calls are only needed to re-measure cold starts).
  void clear_cache();

  /// Session-cumulative phase timings and counters.
  [[nodiscard]] PhaseReport& report() { return report_; }
  [[nodiscard]] const PhaseReport& report() const { return report_; }

  /// Assemble the Galerkin system against the shared pool and warm cache.
  [[nodiscard]] bem::AssemblyResult assemble(const bem::BemModel& model,
                                             const bem::AssemblyOptions& options = {});

  /// Solve one assembled system under the config's solver policy.
  [[nodiscard]] std::vector<double> solve(const la::SymMatrix& matrix,
                                          std::span<const double> rhs,
                                          bem::SolveStats* stats = nullptr);

  /// Full analysis (assembly + solve + design parameters); timings and cache
  /// counters accumulate into report(), and additionally into `run_report`
  /// when provided (a caller's per-run view of the same numbers).
  [[nodiscard]] bem::AnalysisResult analyze(const bem::BemModel& model,
                                            const bem::AnalysisOptions& options = {},
                                            PhaseReport* run_report = nullptr);

  /// Assemble and factor once; the returned handle answers any number of
  /// right-hand sides by substitution only. A FactoredSystem is by
  /// definition a direct-solver handle, so this always runs the blocked
  /// Cholesky (with the config's cholesky_block) regardless of
  /// config().solver — the configured solver policy governs analyze() and
  /// solve(). The handle borrows this engine's pool and report — the
  /// Engine must outlive it.
  [[nodiscard]] FactoredSystem factor(const bem::BemModel& model,
                                      const bem::AnalysisOptions& options = {});

  /// Resolved per-phase execution plans (what the config means in bem
  /// terms); exposed so benches and tests can drive the low-level entry
  /// points with engine-consistent plumbing. Note: driving bem::assemble
  /// directly with these bypasses the physics-fingerprint cache guard —
  /// keep the physics fixed, or go through Engine::assemble/analyze.
  [[nodiscard]] bem::AssemblyExecution assembly_execution();
  [[nodiscard]] bem::SolveExecution solve_execution() const;
  [[nodiscard]] bem::SolverOptions solver_options() const;
  [[nodiscard]] bem::AnalysisExecution analysis_execution();

 private:
  /// The congruence cache is only valid for one physics: soil stack +
  /// integrator + series/Hankel options. Fingerprint them and clear the
  /// cache on change, so one Engine can serve e.g. a uniform and a
  /// two-layer study in sequence without cross-contamination.
  void refresh_cache_fingerprint(const bem::BemModel& model,
                                 const bem::AssemblyOptions& options);

  /// Fold one run's cache delta into the session counters (no-op when the
  /// cache is disabled); bem::analyze does the same for the analyze path.
  void add_cache_counters(const bem::CongruenceCacheStats& delta);

  ExecutionConfig config_;
  std::size_t threads_;
  std::optional<par::ThreadPool> owned_pool_;
  par::ThreadPool* pool_ = nullptr;
  std::optional<bem::CongruenceCache> cache_;
  std::optional<std::uint64_t> cache_fingerprint_;
  PhaseReport report_;
};

}  // namespace ebem::engine

// engine::Engine — the long-lived execution context of the library.
//
// The paper's CAD framing is many nearby analyses in a loop: a designer (or
// the automated ladder of cad::search_design) evaluates candidate after
// candidate against the same soil and the same numerics. An Engine owns
// everything those runs should share instead of re-creating per call:
//
//   * one par::ThreadPool, spawned once and reused by assembly and solve;
//   * one warm bem::CongruenceCache, so candidate k replays the elemental
//     blocks candidates 1..k-1 already integrated (the cache is dropped
//     automatically when the physics fingerprint changes — deferred, under
//     pipelining, until every in-flight assembly drains);
//   * one PhaseReport sink accumulating Table 6.1 style timings and the
//     named counters (cache hits, factorizations, solved right-hand sides)
//     across the whole session — thread-safe, so concurrent runs merge in
//     without losing increments;
//   * one engine::Scheduler (created on first use) that pipelines
//     *asynchronous* runs: submit() returns a RunFuture immediately, the
//     run's assemble -> factor -> solve stages are dispatched from a ready
//     queue onto pipeline_width stage executors, and stages of different
//     runs interleave on the shared pool — assembly of candidate k+1
//     overlaps the factorization/solve tail of candidate k.
//
// Configuration happens once, through a validated engine::ExecutionConfig.
// The blocking analyze()/factor() calls are thin submit+get shims over the
// same pipeline, so both paths produce identical numbers by construction.
// The bem:: free functions remain as serial shims; anything that runs more
// than one analysis should hold an Engine (or an engine::Study bound to
// one) instead — and anything that runs *independent* analyses should
// submit() them instead of blocking one by one.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "src/bem/analysis.hpp"
#include "src/bem/assembly.hpp"
#include "src/bem/congruence_cache.hpp"
#include "src/bem/solver.hpp"
#include "src/common/phase_report.hpp"
#include "src/engine/execution_config.hpp"
#include "src/engine/factored_system.hpp"
#include "src/engine/scheduler.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::engine {

/// Order-dependent hash of everything the elemental blocks depend on besides
/// pair geometry: the soil stack plus integrator/series/Hankel options.
/// Geometry congruence is the cache key's job; this pins the physics the key
/// deliberately leaves out. The scheduler fingerprints every submitted run
/// with it to gate the warm cache.
[[nodiscard]] std::uint64_t physics_fingerprint(const soil::LayeredSoil& soil,
                                                const bem::AssemblyOptions& options);

class Engine;

/// RAII admission to an Engine's cache-coherent assembly phase: the
/// constructor blocks until the run's physics fingerprint is admissible
/// (draining in-flight assemblies and dropping stale cache entries when the
/// physics changed — see Engine::begin_assembly), the destructor releases
/// the slot on every exit path. Shared by Engine::assemble and the
/// scheduler's assemble stage so the active-assembly counter can never go
/// unbalanced.
class AssemblyGate {
 public:
  /// `run_report` (optional) receives the fingerprint-guard cost counters —
  /// cache drops and gate wait seconds — instead of the engine's session
  /// report, so per-run consumers (scheduler futures, campaign rollups) see
  /// the guard cost they actually paid. The scheduler merges run reports
  /// into the session sink on completion, so the totals still converge.
  AssemblyGate(Engine& engine, const std::optional<std::uint64_t>& fingerprint,
               PhaseReport* run_report = nullptr);
  ~AssemblyGate();
  AssemblyGate(const AssemblyGate&) = delete;
  AssemblyGate& operator=(const AssemblyGate&) = delete;

 private:
  Engine& engine_;
};

class Engine {
 public:
  /// Validates the config (throws ebem::InvalidArgument on contradictions)
  /// and spawns the worker pool / cache up front.
  explicit Engine(const ExecutionConfig& config = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Drains the scheduler first: every submitted run reaches a terminal
  /// state before the pool and cache go away.
  ~Engine();

  [[nodiscard]] const ExecutionConfig& config() const { return config_; }
  [[nodiscard]] std::size_t num_threads() const { return threads_; }

  /// Shared worker pool; null when the engine runs serially.
  [[nodiscard]] par::ThreadPool* pool() { return pool_; }

  /// Warm congruence cache; null when disabled by the config.
  [[nodiscard]] bem::CongruenceCache* cache() { return cache_ ? &*cache_ : nullptr; }
  [[nodiscard]] bem::CongruenceCacheStats cache_stats() const {
    return cache_ ? cache_->stats() : bem::CongruenceCacheStats{};
  }
  /// Drop all warm cache entries (the physics-fingerprint guard does this
  /// automatically; manual calls are only needed to re-measure cold starts).
  /// Waits for in-flight assemblies to drain first — entries are never
  /// dropped under a run that is replaying them.
  void clear_cache();

  /// Session-cumulative phase timings and counters. Thread-safe sink:
  /// concurrent pipelined runs merge into it without losing increments.
  [[nodiscard]] PhaseReport& report() { return report_; }
  [[nodiscard]] const PhaseReport& report() const { return report_; }

  // --- asynchronous runs --------------------------------------------------

  /// Submit a full analysis and return immediately. The returned future
  /// carries the AnalysisResult, this run's PhaseReport and its exact
  /// congruence-cache delta. Independent submits pipeline: up to
  /// config().pipeline_width runs have stages in flight at once, sharing
  /// the engine's pool and warm cache. Per-run `overrides` (storage budget,
  /// residual measurement) are validated here, on the submitting thread.
  [[nodiscard]] RunFuture submit(bem::BemModel model, const bem::AnalysisOptions& options = {},
                                 const SubmitOptions& overrides = {});

  /// Submit an assemble+factor run; the future yields a FactoredSystem that
  /// answers any number of right-hand sides by substitution only. Always
  /// the blocked Cholesky regardless of config().solver (a FactoredSystem
  /// is by definition a direct-solver handle). The handle borrows this
  /// engine's pool and report — the Engine must outlive it.
  [[nodiscard]] FactorFuture submit_factor(bem::BemModel model,
                                           const bem::AnalysisOptions& options = {},
                                           const SubmitOptions& overrides = {});

  /// Block until every run submitted so far is terminal.
  void drain();

  /// Scheduler lifetime accounting: runs submitted and the peak number of
  /// simultaneously non-terminal runs — what the ExecutionConfig::
  /// max_pending_runs backpressure bound caps. Zeros before the first
  /// submission (the scheduler is created lazily).
  [[nodiscard]] SchedulerStats scheduler_stats();

  // --- blocking calls -----------------------------------------------------

  /// Assemble the Galerkin system against the shared pool and warm cache.
  [[nodiscard]] bem::AssemblyResult assemble(const bem::BemModel& model,
                                             const bem::AssemblyOptions& options = {});

  /// Solve one assembled system under the config's solver policy. This is
  /// the matrix-level entry: `rhs` must be in the matrix's own row order.
  /// For a system assembled under a geometric DoF ordering, pass
  /// AssemblyResult::ordering via bem::solve's SolveExecution (or use
  /// analyze()/factor(), which handle the permutation boundary themselves).
  [[nodiscard]] std::vector<double> solve(const la::SymMatrix& matrix,
                                          std::span<const double> rhs,
                                          bem::SolveStats* stats = nullptr);

  /// Full analysis (assembly + solve + design parameters) — a thin
  /// submit()+get() shim over the pipeline, so it interleaves fairly with
  /// concurrently submitted runs. Timings and cache counters accumulate
  /// into report(), and additionally into `run_report` when provided (a
  /// caller's per-run view of the same numbers).
  [[nodiscard]] bem::AnalysisResult analyze(const bem::BemModel& model,
                                            const bem::AnalysisOptions& options = {},
                                            PhaseReport* run_report = nullptr);

  /// Assemble and factor once — the blocking shim of submit_factor().
  [[nodiscard]] FactoredSystem factor(const bem::BemModel& model,
                                      const bem::AnalysisOptions& options = {});

  /// Resolved per-phase execution plans (what the config means in bem
  /// terms); exposed so benches and tests can drive the low-level entry
  /// points with engine-consistent plumbing. Note: driving bem::assemble
  /// directly with these bypasses the physics-fingerprint cache guard —
  /// keep the physics fixed, or go through Engine::assemble/analyze.
  [[nodiscard]] bem::AssemblyExecution assembly_execution();
  [[nodiscard]] bem::SolveExecution solve_execution() const;
  [[nodiscard]] bem::SolverOptions solver_options() const;
  [[nodiscard]] bem::AnalysisExecution analysis_execution();

 private:
  friend class AssemblyGate;
  friend class Study;  ///< for the copy-free borrowed submits of its shims

  /// Admission to the cache-coherent assembly phase (no-op when the cache
  /// is off). A run whose `fingerprint` differs from the cache's current
  /// physics waits until the in-flight assemblies drain, then drops the
  /// stale entries and installs its fingerprint — the deferred clear the
  /// pipelining contract requires. Balanced by end_assembly(); always taken
  /// through the AssemblyGate RAII.
  void begin_assembly(const std::optional<std::uint64_t>& fingerprint, PhaseReport* run_report);
  void end_assembly();

  /// The lazily created stage scheduler (spawning executor threads only
  /// once something actually submits).
  Scheduler& scheduler();

  ExecutionConfig config_;
  std::size_t threads_;
  std::optional<par::ThreadPool> owned_pool_;
  par::ThreadPool* pool_ = nullptr;
  std::optional<bem::CongruenceCache> cache_;
  PhaseReport report_;

  // Cache-coherence gate (see begin_assembly).
  std::mutex gate_mutex_;
  std::condition_variable gate_cv_;
  std::size_t active_assemblies_ = 0;
  std::optional<std::uint64_t> cache_fingerprint_;

  // Declared last: destroyed first, so the scheduler drains while the pool
  // and cache above are still alive.
  std::mutex scheduler_mutex_;
  std::unique_ptr<Scheduler> scheduler_;
};

}  // namespace ebem::engine

// engine::Study — one physics, many models, shared warm state.
//
// A Study binds an Engine to a fixed set of analysis options (soil series
// tolerances, basis, GPR) and runs model after model against it. That is
// the shape of every CAD loop in the paper: the design ladder re-meshes the
// same site, soil estimation re-analyzes the same grid under fitted soils,
// safety sweeps re-solve the chosen design. Because the physics is pinned,
// every run legitimately shares the Engine's warm congruence cache, and the
// Study tracks the per-run cache delta — the number candidate k actually
// gained from candidates 1..k-1.
#pragma once

#include <cstddef>

#include "src/bem/analysis.hpp"
#include "src/bem/congruence_cache.hpp"
#include "src/engine/engine.hpp"
#include "src/engine/factored_system.hpp"

namespace ebem::engine {

class Study {
 public:
  /// The engine is borrowed and must outlive the study.
  explicit Study(Engine& engine, bem::AnalysisOptions options = {});

  /// Analyze one model under the study's physics, against the engine's warm
  /// resources. Safe to call with differently meshed / sized models.
  /// `run_report` receives this run's phase timings and counters on top of
  /// the engine's cumulative report.
  [[nodiscard]] bem::AnalysisResult analyze(const bem::BemModel& model,
                                            PhaseReport* run_report = nullptr);

  /// Assemble + factor one model once for many right-hand sides.
  [[nodiscard]] FactoredSystem factor(const bem::BemModel& model);

  [[nodiscard]] Engine& engine() const { return *engine_; }
  [[nodiscard]] const bem::AnalysisOptions& options() const { return options_; }

  /// Number of analyze()/factor() runs so far.
  [[nodiscard]] std::size_t runs() const { return runs_; }

  /// Congruence-cache counters of the most recent run only (hits a run took
  /// from the warm cache, misses it had to integrate). Zeros before the
  /// first run or when the engine's cache is disabled.
  [[nodiscard]] const bem::CongruenceCacheStats& last_cache_delta() const {
    return last_cache_delta_;
  }

 private:
  void record_delta(const bem::CongruenceCacheStats& before);

  Engine* engine_;
  bem::AnalysisOptions options_;
  std::size_t runs_ = 0;
  bem::CongruenceCacheStats last_cache_delta_{};
};

}  // namespace ebem::engine

// engine::Study — one physics, many models, shared warm state.
//
// A Study binds an Engine to a fixed set of analysis options (soil series
// tolerances, basis, GPR) and runs model after model against it. That is
// the shape of every CAD loop in the paper: the design ladder re-meshes the
// same site, soil estimation re-analyzes the same grid under fitted soils,
// safety sweeps re-solve the chosen design. Because the physics is pinned,
// every run legitimately shares the Engine's warm congruence cache, and the
// Study tracks the per-run cache delta — the number candidate k actually
// gained from candidates 1..k-1.
//
// Independent models should be submit()ted rather than analyzed one by one:
// the engine's scheduler pipelines their assemble/factor/solve stages on
// the shared pool, and each RunFuture carries its own result, PhaseReport
// and exact cache delta (cad::search_design submits its whole ladder this
// way and consumes the futures in order).
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>

#include "src/bem/analysis.hpp"
#include "src/bem/congruence_cache.hpp"
#include "src/engine/engine.hpp"
#include "src/engine/factored_system.hpp"
#include "src/engine/scheduler.hpp"

namespace ebem::engine {

class Study {
 public:
  /// The engine is borrowed and must outlive the study.
  explicit Study(Engine& engine, bem::AnalysisOptions options = {});

  /// Submit one model for analysis under the study's physics; returns
  /// immediately. Concurrent submits pipeline on the engine's scheduler and
  /// share the warm cache; the future's cache_delta() is this run's exact
  /// hit/miss tally.
  [[nodiscard]] RunFuture submit(bem::BemModel model, const SubmitOptions& overrides = {});

  /// Analyze one model under the study's physics, against the engine's warm
  /// resources — the blocking submit+get shim. Safe to call with
  /// differently meshed / sized models. `run_report` receives this run's
  /// phase timings and counters on top of the engine's cumulative report.
  [[nodiscard]] bem::AnalysisResult analyze(const bem::BemModel& model,
                                            PhaseReport* run_report = nullptr);

  /// Assemble + factor one model once for many right-hand sides.
  [[nodiscard]] FactoredSystem factor(const bem::BemModel& model);

  [[nodiscard]] Engine& engine() const { return *engine_; }
  [[nodiscard]] const bem::AnalysisOptions& options() const { return options_; }

  /// Number of submit()/analyze()/factor() runs so far (submitted runs
  /// count at submission).
  [[nodiscard]] std::size_t runs() const { return runs_.load(std::memory_order_relaxed); }

  /// Congruence-cache counters of the most recently *completed* blocking
  /// run (hits a run took from the warm cache, misses it had to integrate).
  /// Zeros before the first run or when the engine's cache is disabled.
  /// Pipelined submits don't update this — each future carries its own
  /// delta, which is the only well-defined "per run" under concurrency.
  [[nodiscard]] bem::CongruenceCacheStats last_cache_delta() const {
    const std::scoped_lock lock(delta_mutex_);
    return last_cache_delta_;
  }

 private:
  void record_delta(const bem::CongruenceCacheStats& delta);

  Engine* engine_;
  bem::AnalysisOptions options_;
  std::atomic<std::size_t> runs_{0};
  mutable std::mutex delta_mutex_;
  bem::CongruenceCacheStats last_cache_delta_{};
};

}  // namespace ebem::engine

#include "src/engine/study.hpp"

#include <utility>

namespace ebem::engine {

Study::Study(Engine& engine, bem::AnalysisOptions options)
    : engine_(&engine), options_(std::move(options)) {}

void Study::record_delta(const bem::CongruenceCacheStats& delta) {
  const std::scoped_lock lock(delta_mutex_);
  last_cache_delta_ = delta;
}

RunFuture Study::submit(bem::BemModel model, const SubmitOptions& overrides) {
  RunFuture future = engine_->submit(std::move(model), options_, overrides);
  // Counted only after submit() accepted the run — a validation throw above
  // must not inflate runs().
  runs_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

bem::AnalysisResult Study::analyze(const bem::BemModel& model, PhaseReport* run_report) {
  // The engine's blocking shim already is submit+take+report-merge; reusing
  // it keeps exactly one copy of that protocol.
  bem::AnalysisResult result = engine_->analyze(model, options_, run_report);
  runs_.fetch_add(1, std::memory_order_relaxed);
  // The assembly tallied this run's lookups itself, so the delta is exact
  // even if other runs were in flight on the same cache.
  record_delta(result.cache_stats);
  return result;
}

FactoredSystem Study::factor(const bem::BemModel& model) {
  // No Engine shim fits here: the cache delta is not on FactoredSystem, so
  // this path holds the future itself (borrowed submit — we block below).
  FactorFuture future = engine_->scheduler().submit_factor_borrowed(model, options_, {});
  runs_.fetch_add(1, std::memory_order_relaxed);
  FactoredSystem system = future.take();
  record_delta(future.cache_delta());
  return system;
}

}  // namespace ebem::engine

#include "src/engine/study.hpp"

#include <utility>

namespace ebem::engine {

Study::Study(Engine& engine, bem::AnalysisOptions options)
    : engine_(&engine), options_(std::move(options)) {}

void Study::record_delta(const bem::CongruenceCacheStats& before) {
  last_cache_delta_ = engine_->cache_stats().delta_since(before);
  ++runs_;
}

bem::AnalysisResult Study::analyze(const bem::BemModel& model, PhaseReport* run_report) {
  const bem::CongruenceCacheStats before = engine_->cache_stats();
  bem::AnalysisResult result = engine_->analyze(model, options_, run_report);
  record_delta(before);
  return result;
}

FactoredSystem Study::factor(const bem::BemModel& model) {
  const bem::CongruenceCacheStats before = engine_->cache_stats();
  FactoredSystem system = engine_->factor(model, options_);
  record_delta(before);
  return system;
}

}  // namespace ebem::engine

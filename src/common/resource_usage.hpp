// Process resource gauges for benches and reports.
#pragma once

#include <cstddef>

namespace ebem {

/// Peak resident-set size of this process in bytes (getrusage's high-water
/// mark); 0 where the platform does not report it. The benches emit it next
/// to the tile stores' resident-byte gauges so out-of-core memory wins are
/// visible in the archived JSON.
[[nodiscard]] std::size_t peak_rss_bytes();

}  // namespace ebem

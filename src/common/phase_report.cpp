#include "src/common/phase_report.hpp"

#include <iomanip>
#include <numeric>
#include <sstream>

#include "src/common/error.hpp"

namespace ebem {

namespace {
constexpr std::size_t index_of(Phase phase) { return static_cast<std::size_t>(phase); }
}  // namespace

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kDataInput:
      return "Data Input";
    case Phase::kPreprocessing:
      return "Data Preprocessing";
    case Phase::kMatrixGeneration:
      return "Matrix Generation";
    case Phase::kLinearSolve:
      return "Linear System Solving";
    case Phase::kResultsStorage:
      return "Results Storage";
    case Phase::kCount:
      break;
  }
  return "Unknown";
}

void PhaseReport::add(Phase phase, double wall_seconds, double cpu_seconds) {
  EBEM_EXPECT(phase != Phase::kCount, "phase out of range");
  wall_[index_of(phase)] += wall_seconds;
  cpu_[index_of(phase)] += cpu_seconds;
}

double PhaseReport::wall_seconds(Phase phase) const { return wall_[index_of(phase)]; }

double PhaseReport::cpu_seconds(Phase phase) const { return cpu_[index_of(phase)]; }

double PhaseReport::total_wall_seconds() const {
  return std::accumulate(wall_.begin(), wall_.end(), 0.0);
}

double PhaseReport::total_cpu_seconds() const {
  return std::accumulate(cpu_.begin(), cpu_.end(), 0.0);
}

void PhaseReport::add_counter(std::string_view name, double value) {
  for (auto& [existing, total] : counters_) {
    if (existing == name) {
      total += value;
      return;
    }
  }
  counters_.emplace_back(std::string(name), value);
}

double PhaseReport::counter(std::string_view name) const {
  for (const auto& [existing, total] : counters_) {
    if (existing == name) return total;
  }
  return 0.0;
}

void PhaseReport::merge(const PhaseReport& other) {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    wall_[i] += other.wall_[i];
    cpu_[i] += other.cpu_[i];
  }
  for (const auto& [name, value] : other.counters_) add_counter(name, value);
}

double PhaseReport::cpu_fraction(Phase phase) const {
  const double total = total_cpu_seconds();
  return total > 0.0 ? cpu_seconds(phase) / total : 0.0;
}

std::string PhaseReport::to_string() const {
  std::ostringstream os;
  os << std::left << std::setw(24) << "Process" << std::right << std::setw(14) << "CPU time(s)"
     << std::setw(14) << "Wall time(s)" << '\n';
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    os << std::left << std::setw(24) << phase_name(static_cast<Phase>(i)) << std::right
       << std::fixed << std::setprecision(3) << std::setw(14) << cpu_[i] << std::setw(14)
       << wall_[i] << '\n';
  }
  os << std::left << std::setw(24) << "Total" << std::right << std::fixed << std::setprecision(3)
     << std::setw(14) << total_cpu_seconds() << std::setw(14) << total_wall_seconds() << '\n';
  if (!counters_.empty()) {
    os << std::defaultfloat << std::setprecision(6);
    for (const auto& [name, value] : counters_) {
      os << std::left << std::setw(24) << name << std::right << std::setw(14) << value << '\n';
    }
  }
  return os.str();
}

}  // namespace ebem

#include "src/common/phase_report.hpp"

#include <iomanip>
#include <numeric>
#include <sstream>

#include "src/common/error.hpp"

namespace ebem {

namespace {
constexpr std::size_t index_of(Phase phase) { return static_cast<std::size_t>(phase); }
}  // namespace

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kDataInput:
      return "Data Input";
    case Phase::kPreprocessing:
      return "Data Preprocessing";
    case Phase::kMatrixGeneration:
      return "Matrix Generation";
    case Phase::kLinearSolve:
      return "Linear System Solving";
    case Phase::kResultsStorage:
      return "Results Storage";
    case Phase::kCount:
      break;
  }
  return "Unknown";
}

PhaseReport::PhaseReport(const PhaseReport& other) {
  const std::scoped_lock lock(other.mutex_);
  wall_ = other.wall_;
  cpu_ = other.cpu_;
  counters_ = other.counters_;
}

PhaseReport& PhaseReport::operator=(const PhaseReport& other) {
  if (this == &other) return *this;
  // Two distinct reports: lock both without ordering deadlocks.
  const std::scoped_lock lock(mutex_, other.mutex_);
  wall_ = other.wall_;
  cpu_ = other.cpu_;
  counters_ = other.counters_;
  return *this;
}

void PhaseReport::add(Phase phase, double wall_seconds, double cpu_seconds) {
  EBEM_EXPECT(phase != Phase::kCount, "phase out of range");
  const std::scoped_lock lock(mutex_);
  wall_[index_of(phase)] += wall_seconds;
  cpu_[index_of(phase)] += cpu_seconds;
}

double PhaseReport::wall_seconds(Phase phase) const {
  const std::scoped_lock lock(mutex_);
  return wall_[index_of(phase)];
}

double PhaseReport::cpu_seconds(Phase phase) const {
  const std::scoped_lock lock(mutex_);
  return cpu_[index_of(phase)];
}

double PhaseReport::total_wall_seconds() const {
  const std::scoped_lock lock(mutex_);
  return std::accumulate(wall_.begin(), wall_.end(), 0.0);
}

double PhaseReport::total_cpu_seconds() const {
  const std::scoped_lock lock(mutex_);
  return std::accumulate(cpu_.begin(), cpu_.end(), 0.0);
}

void PhaseReport::add_counter_locked(std::string_view name, double value) {
  for (auto& [existing, total] : counters_) {
    if (existing == name) {
      total += value;
      return;
    }
  }
  counters_.emplace_back(std::string(name), value);
}

void PhaseReport::add_counter(std::string_view name, double value) {
  const std::scoped_lock lock(mutex_);
  add_counter_locked(name, value);
}

double PhaseReport::counter(std::string_view name) const {
  const std::scoped_lock lock(mutex_);
  for (const auto& [existing, total] : counters_) {
    if (existing == name) return total;
  }
  return 0.0;
}

std::vector<std::pair<std::string, double>> PhaseReport::counters_snapshot() const {
  const std::scoped_lock lock(mutex_);
  return counters_;
}

void PhaseReport::merge(const PhaseReport& other) {
  // Snapshot `other` under its own lock, then fold the snapshot in under
  // ours. Taking the locks sequentially (never nested) keeps any
  // merge-into-each-other pattern deadlock-free; self-merge doubles, which
  // matches the additive contract.
  PhaseReport snapshot(other);
  const std::scoped_lock lock(mutex_);
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    wall_[i] += snapshot.wall_[i];
    cpu_[i] += snapshot.cpu_[i];
  }
  for (const auto& [name, value] : snapshot.counters_) add_counter_locked(name, value);
}

double PhaseReport::cpu_fraction(Phase phase) const {
  const std::scoped_lock lock(mutex_);
  const double total = std::accumulate(cpu_.begin(), cpu_.end(), 0.0);
  return total > 0.0 ? cpu_[index_of(phase)] / total : 0.0;
}

std::string PhaseReport::to_string() const {
  const std::scoped_lock lock(mutex_);
  std::ostringstream os;
  os << std::left << std::setw(24) << "Process" << std::right << std::setw(14) << "CPU time(s)"
     << std::setw(14) << "Wall time(s)" << '\n';
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    os << std::left << std::setw(24) << phase_name(static_cast<Phase>(i)) << std::right
       << std::fixed << std::setprecision(3) << std::setw(14) << cpu_[i] << std::setw(14)
       << wall_[i] << '\n';
  }
  const double total_cpu = std::accumulate(cpu_.begin(), cpu_.end(), 0.0);
  const double total_wall = std::accumulate(wall_.begin(), wall_.end(), 0.0);
  os << std::left << std::setw(24) << "Total" << std::right << std::fixed << std::setprecision(3)
     << std::setw(14) << total_cpu << std::setw(14) << total_wall << '\n';
  if (!counters_.empty()) {
    os << std::defaultfloat << std::setprecision(6);
    for (const auto& [name, value] : counters_) {
      os << std::left << std::setw(24) << name << std::right << std::setw(14) << value << '\n';
    }
  }
  return os.str();
}

}  // namespace ebem

#include "src/common/timer.hpp"

#include <ctime>

namespace ebem {

CpuTimer::CpuTimer() : start_(now()) {}

void CpuTimer::reset() { start_ = now(); }

double CpuTimer::seconds() const { return now() - start_; }

double CpuTimer::now() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

}  // namespace ebem

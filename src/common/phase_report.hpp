// Per-phase timing record for an analysis run.
//
// The paper's Table 6.1 splits a run into Data Input, Data Preprocessing,
// Matrix Generation, Linear System Solving and Results Storage; this type is
// the structured equivalent that the CAD facade fills in and the Table 6.1
// bench prints.
//
// A PhaseReport is a thread-safe sink: add(), add_counter() and merge() from
// concurrent runs are serialized internally, so the engine's pipelining
// scheduler can fold several in-flight runs into one session report without
// losing increments (named counters added from two runs concurrently land
// additively, like phase times). Reads lock the same mutex; the one
// exception is counters(), which returns a reference and is only meaningful
// once concurrent writers are done.
#pragma once

#include <array>
#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ebem {

/// The analysis phases the paper times individually (Table 6.1).
enum class Phase : std::size_t {
  kDataInput = 0,
  kPreprocessing,
  kMatrixGeneration,
  kLinearSolve,
  kResultsStorage,
  kCount,
};

/// Human-readable phase name as printed in the paper's Table 6.1.
[[nodiscard]] const char* phase_name(Phase phase);

/// Accumulated wall/CPU seconds per phase for one analysis run.
class PhaseReport {
 public:
  PhaseReport() = default;
  /// Copies transfer the accumulated numbers, not the lock: each report owns
  /// its own mutex. (No move operations — a copy of the small arrays is the
  /// move, and keeping copies valid under a concurrent reader is simpler.)
  PhaseReport(const PhaseReport& other);
  PhaseReport& operator=(const PhaseReport& other);

  void add(Phase phase, double wall_seconds, double cpu_seconds);

  [[nodiscard]] double wall_seconds(Phase phase) const;
  [[nodiscard]] double cpu_seconds(Phase phase) const;
  [[nodiscard]] double total_wall_seconds() const;
  [[nodiscard]] double total_cpu_seconds() const;

  /// Fraction of total CPU time spent in `phase` (0 when nothing recorded).
  [[nodiscard]] double cpu_fraction(Phase phase) const;

  /// Accumulate a named auxiliary counter (congruence-cache hits, solver
  /// iterations, ...). Counters are additive across calls, like phase times
  /// across add(), so rates belong to the caller, not the report. Safe to
  /// call from concurrent threads; no increment is lost.
  void add_counter(std::string_view name, double value);

  /// Accumulated value of `name`; 0 when never added.
  [[nodiscard]] double counter(std::string_view name) const;

  /// Accumulate every phase time and counter of `other` into this report —
  /// how a per-run report folds into a session-cumulative sink. Safe against
  /// concurrent merges/adds into this report; `other` is snapshotted first,
  /// so merging a report that is itself still being written is also safe.
  void merge(const PhaseReport& other);

  /// Counters in first-added order. Unsynchronized view: only read it once
  /// concurrent writers are done (use counter() while runs are in flight).
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& counters() const {
    return counters_;
  }

  /// Locked copy of the counters, safe while concurrent runs are still
  /// merging into this report — what a live stats endpoint (the service
  /// layer's per-tenant bills) reads instead of counters().
  [[nodiscard]] std::vector<std::pair<std::string, double>> counters_snapshot() const;

  /// Multi-line table in the style of the paper's Table 6.1, followed by the
  /// auxiliary counters when any were recorded.
  [[nodiscard]] std::string to_string() const;

 private:
  static constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);

  void add_counter_locked(std::string_view name, double value);

  mutable std::mutex mutex_;
  std::array<double, kNumPhases> wall_{};
  std::array<double, kNumPhases> cpu_{};
  std::vector<std::pair<std::string, double>> counters_;
};

}  // namespace ebem

#include "src/common/error.hpp"

#include <sstream>

namespace ebem::detail {

namespace {
std::string format(const char* kind, const char* condition, const char* file, int line,
                   const std::string& message) {
  std::ostringstream os;
  os << kind << ": " << message << " [failed: " << condition << " at " << file << ":" << line
     << "]";
  return os.str();
}
}  // namespace

void throw_invalid_argument(const char* condition, const char* file, int line,
                            const std::string& message) {
  throw InvalidArgument(format("invalid argument", condition, file, line, message));
}

void throw_internal_error(const char* condition, const char* file, int line,
                          const std::string& message) {
  throw InternalError(format("internal error", condition, file, line, message));
}

}  // namespace ebem::detail

// Wall-clock and CPU timers used by the phase report and the benches.
#pragma once

#include <chrono>

namespace ebem {

/// Monotonic wall-clock stopwatch. Running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process CPU-time stopwatch (sums over all threads), mirroring the
/// CPU-time numbers the paper reports in Tables 6.1 and 6.3.
class CpuTimer {
 public:
  CpuTimer();
  void reset();
  [[nodiscard]] double seconds() const;

 private:
  double start_;
  static double now();
};

}  // namespace ebem

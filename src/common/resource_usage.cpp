#include "src/common/resource_usage.hpp"

#include <sys/resource.h>

namespace ebem {

std::size_t peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux (bytes on macOS, but CI and the bench
  // containers are Linux; a 1024x overshoot there would still be obvious).
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

}  // namespace ebem

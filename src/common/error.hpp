// Contract-checking helpers used across the library.
//
// Every exception the library throws derives from ebem::Error, so callers
// can catch one type at the boundary. Public API entry points validate
// their inputs with EBEM_EXPECT (throws ebem::InvalidArgument); internal
// invariants use EBEM_ENSURE (throws ebem::InternalError); environment
// failures such as an unwritable spill directory throw ebem::IoError.
// Hot inner loops rely on assert() only.
#pragma once

#include <stdexcept>
#include <string>

namespace ebem {

/// Root of the library's exception hierarchy; everything ebem throws IS-A
/// Error, so `catch (const ebem::Error&)` is the one boundary handler.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a caller hands the library an invalid argument.
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// Thrown when an internal invariant is violated (a library bug).
class InternalError : public Error {
 public:
  using Error::Error;
};

/// Thrown when the environment fails the library at runtime — file system
/// errors from the out-of-core tile pager, unwritable spill directories.
class IoError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* condition, const char* file, int line,
                                         const std::string& message);
[[noreturn]] void throw_internal_error(const char* condition, const char* file, int line,
                                       const std::string& message);
}  // namespace detail

}  // namespace ebem

/// Validate a user-supplied precondition; throws ebem::InvalidArgument.
#define EBEM_EXPECT(cond, msg)                                                     \
  do {                                                                             \
    if (!(cond)) ::ebem::detail::throw_invalid_argument(#cond, __FILE__, __LINE__, \
                                                        (msg));                    \
  } while (0)

/// Validate an internal invariant; throws ebem::InternalError.
#define EBEM_ENSURE(cond, msg)                                                   \
  do {                                                                           \
    if (!(cond)) ::ebem::detail::throw_internal_error(#cond, __FILE__, __LINE__, \
                                                      (msg));                    \
  } while (0)

// Contract-checking helpers used across the library.
//
// Public API entry points validate their inputs with EBEM_EXPECT (throws
// std::invalid_argument) so a misconfigured analysis fails loudly at setup
// time; internal invariants use EBEM_ENSURE (throws std::logic_error).
// Hot inner loops rely on assert() only.
#pragma once

#include <stdexcept>
#include <string>

namespace ebem {

/// Thrown when a caller hands the library an invalid argument.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated (a library bug).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* condition, const char* file, int line,
                                         const std::string& message);
[[noreturn]] void throw_internal_error(const char* condition, const char* file, int line,
                                       const std::string& message);
}  // namespace detail

}  // namespace ebem

/// Validate a user-supplied precondition; throws ebem::InvalidArgument.
#define EBEM_EXPECT(cond, msg)                                                     \
  do {                                                                             \
    if (!(cond)) ::ebem::detail::throw_invalid_argument(#cond, __FILE__, __LINE__, \
                                                        (msg));                    \
  } while (0)

/// Validate an internal invariant; throws ebem::InternalError.
#define EBEM_ENSURE(cond, msg)                                                   \
  do {                                                                           \
    if (!(cond)) ::ebem::detail::throw_internal_error(#cond, __FILE__, __LINE__, \
                                                      (msg));                    \
  } while (0)

// Small numeric helpers shared across modules.
#pragma once

#include <cmath>
#include <numbers>

namespace ebem {

inline constexpr double kPi = std::numbers::pi;

/// Relative-plus-absolute closeness test for floating-point comparisons.
[[nodiscard]] inline bool almost_equal(double a, double b, double rel_tol = 1e-12,
                                       double abs_tol = 1e-14) {
  return std::abs(a - b) <= abs_tol + rel_tol * std::max(std::abs(a), std::abs(b));
}

/// x*x, spelled for readability in distance formulas.
[[nodiscard]] inline constexpr double square(double x) { return x * x; }

}  // namespace ebem

// Small non-cryptographic hashing helpers shared across modules.
//
// std::hash makes no mixing guarantees (libstdc++ hashes integers to
// themselves), which is unusable for sharded hash maps that key shards off
// hash bits; splitmix64 is the standard cheap finalizer with full avalanche.
#pragma once

#include <cstdint>
#include <span>

namespace ebem {

/// splitmix64 finalizer: cheap full-avalanche mixing of a 64-bit word.
[[nodiscard]] inline constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent combination of a running hash with the next value.
[[nodiscard]] inline constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                          std::uint64_t value) {
  return splitmix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// Hash of a word sequence (order dependent, non-zero seed so that the empty
/// sequence and a single zero word hash differently).
[[nodiscard]] inline constexpr std::uint64_t hash_words(std::span<const std::uint64_t> words,
                                                        std::uint64_t seed = 0x1234567890abcdefULL) {
  std::uint64_t h = seed;
  for (const std::uint64_t w : words) h = hash_combine(h, w);
  return h;
}

}  // namespace ebem

// Portable SIMD support for the batched kernels.
//
// Three pieces, each deliberately small:
//
//  * EBEM_SIMD_MULTIVERSION — per-ISA function multi-versioning via
//    target_clones. The batched loops are written once, portably; on x86-64
//    Linux the compiler emits a default, an AVX2 and an AVX-512F clone and
//    the dynamic linker picks the widest one the CPU supports at load time.
//    Elsewhere the macro expands to nothing and the default codegen is used.
//  * EBEM_SIMD_LOOP / EBEM_SIMD_LOOP_REDUCE — `#pragma omp simd` spellings.
//    The library is compiled with -fopenmp-simd (no OpenMP runtime), so the
//    pragma licenses vectorization — including the lane-reduction reorder a
//    min/sum reduction needs — without touching threading or math semantics.
//  * simd_log1p / simd_exp — branch-free transcendentals that vectorize
//    inside the loops above. libm's scalar calls would serialize every lane;
//    these are straight-line bit twiddling + Horner polynomials, accurate to
//    a few ulp over the kernels' argument ranges (documented per function),
//    which sits far inside the 1e-12 assembly parity contract.
#pragma once

#include <bit>
#include <cstdint>

// ThreadSanitizer and target_clones cannot coexist: the ifunc resolvers the
// clones need run during relocation, before the TSan runtime has mapped its
// shadow, and the process segfaults pre-main. Under TSan fall back to the
// default codegen — the omp-simd loops and parity contract are unchanged.
#if defined(__SANITIZE_THREAD__)
#define EBEM_SIMD_NO_MULTIVERSION 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define EBEM_SIMD_NO_MULTIVERSION 1
#endif
#endif

#if defined(__x86_64__) && defined(__linux__) && defined(__has_attribute) && \
    !defined(EBEM_SIMD_NO_MULTIVERSION)
#if __has_attribute(target_clones)
#define EBEM_SIMD_MULTIVERSION __attribute__((target_clones("default", "avx2", "avx512f")))
#endif
#endif
#ifndef EBEM_SIMD_MULTIVERSION
#define EBEM_SIMD_MULTIVERSION
#endif

#if defined(__GNUC__) || defined(__clang__)
#define EBEM_RESTRICT __restrict__
#define EBEM_SIMD_PRAGMA_(tokens) _Pragma(#tokens)
#define EBEM_SIMD_LOOP _Pragma("omp simd")
/// Vectorized loop carrying a reduction, e.g. EBEM_SIMD_LOOP_REDUCE(min : lo).
#define EBEM_SIMD_LOOP_REDUCE(...) EBEM_SIMD_PRAGMA_(omp simd reduction(__VA_ARGS__))
/// Vectorized loop with arbitrary `omp simd` clauses, e.g.
/// EBEM_SIMD_LOOP_CLAUSES(reduction(min : lo) reduction(+ : sum)).
#define EBEM_SIMD_LOOP_CLAUSES(...) EBEM_SIMD_PRAGMA_(omp simd __VA_ARGS__)
#else
#define EBEM_RESTRICT
#define EBEM_SIMD_LOOP
#define EBEM_SIMD_LOOP_REDUCE(...)
#define EBEM_SIMD_LOOP_CLAUSES(...)
#endif

namespace ebem {

namespace simd_detail {

// log(2) split so that exponent * ln2_hi is exact (low 27 bits zero).
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
inline constexpr float kLn2HiF = 6.9313812256e-01f;
inline constexpr float kLn2LoF = 9.0580006145e-06f;

}  // namespace simd_detail

/// Branch-free log1p for y > -0.5 (the segment kernels only pass y > 0).
/// Accuracy: a few ulp. Structure: u = 1+y with the rounding error recovered
/// exactly (Sterbenz) and folded back as a first-order correction,
/// log(1+y) = log(u) + (y - (u-1))/u; then log(u) = e*ln2 + 2*atanh(z) with
/// z = (m-1)/(m+1) and m the mantissa of u centered on [sqrt(2)/2, sqrt(2)),
/// so |z| <= 0.1716 and an 11-term odd Taylor series truncates below 1e-17.
[[nodiscard]] inline double simd_log1p(double y) {
  const double u = 1.0 + y;
  const double c = (y - (u - 1.0)) / u;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(u);
  // 32-bit exponent on purpose: int32 -> double converts with baseline AVX
  // (vcvtdq2pd); an int64 here needs AVX512DQ and blocks vectorization of
  // every loop this inlines into on avx2/avx512f-only clones.
  std::int32_t e = static_cast<std::int32_t>(bits >> 52) - 1023;
  double m = std::bit_cast<double>((bits & 0x000fffffffffffffULL) | 0x3ff0000000000000ULL);
  const bool upper = m > 1.4142135623730951;
  m = upper ? 0.5 * m : m;
  e += upper ? 1 : 0;
  const double z = (m - 1.0) / (m + 1.0);
  const double z2 = z * z;
  double p = 1.0 / 21.0;
  p = p * z2 + 1.0 / 19.0;
  p = p * z2 + 1.0 / 17.0;
  p = p * z2 + 1.0 / 15.0;
  p = p * z2 + 1.0 / 13.0;
  p = p * z2 + 1.0 / 11.0;
  p = p * z2 + 1.0 / 9.0;
  p = p * z2 + 1.0 / 7.0;
  p = p * z2 + 1.0 / 5.0;
  p = p * z2 + 1.0 / 3.0;
  const double log_m = 2.0 * z + (2.0 * z) * z2 * p;
  const double ef = static_cast<double>(e);
  return ef * simd_detail::kLn2Hi + (log_m + (c + ef * simd_detail::kLn2Lo));
}

/// Single-precision variant for the mixed-precision image-tail experiment;
/// same structure, 5 odd terms (truncation ~2e-9 relative, below half-ulp).
[[nodiscard]] inline float simd_log1p(float y) {
  const float u = 1.0f + y;
  const float c = (y - (u - 1.0f)) / u;
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(u);
  std::int32_t e = static_cast<std::int32_t>(bits >> 23) - 127;
  float m = std::bit_cast<float>((bits & 0x007fffffu) | 0x3f800000u);
  const bool upper = m > 1.4142135f;
  m = upper ? 0.5f * m : m;
  e += upper ? 1 : 0;
  const float z = (m - 1.0f) / (m + 1.0f);
  const float z2 = z * z;
  float p = 1.0f / 9.0f;
  p = p * z2 + 1.0f / 7.0f;
  p = p * z2 + 1.0f / 5.0f;
  p = p * z2 + 1.0f / 3.0f;
  const float log_m = 2.0f * z + (2.0f * z) * z2 * p;
  const float ef = static_cast<float>(e);
  return ef * simd_detail::kLn2HiF + (log_m + (c + ef * simd_detail::kLn2LoF));
}

/// Branch-free exp, accurate to a few ulp for |x| < 700; saturates cleanly
/// (underflows to 0 below ~-745, overflows to +inf above ~709) instead of
/// raising. The spectral-coefficient tables only ever pass x <= 0. Standard
/// reduction x = n*ln2 + r with |r| <= ln2/2, a degree-14 Taylor of exp(r),
/// and a two-factor 2^n rebuild so n down to -1074 stays representable.
[[nodiscard]] inline double simd_exp(double x) {
  const double kInvLn2 = 1.4426950408889634;
  double n = x * kInvLn2;
  // Clamp first so the rounding casts stay in int32 range for any finite x
  // (the saturation blends at the end own the extreme inputs anyway); then
  // round to nearest without touching the FP environment. int32 on purpose:
  // as in simd_log1p, it keeps the double <-> integer conversions
  // vectorizable pre-AVX512DQ.
  n = n < -1075.0 ? -1075.0 : n;
  n = n > 1025.0 ? 1025.0 : n;
  n = n >= 0.0 ? static_cast<double>(static_cast<std::int32_t>(n + 0.5))
               : static_cast<double>(static_cast<std::int32_t>(n - 0.5));
  const double r = (x - n * simd_detail::kLn2Hi) - n * simd_detail::kLn2Lo;
  double q = 1.0 / 87178291200.0;  // 1/14!
  q = q * r + 1.0 / 6227020800.0;
  q = q * r + 1.0 / 479001600.0;
  q = q * r + 1.0 / 39916800.0;
  q = q * r + 1.0 / 3628800.0;
  q = q * r + 1.0 / 362880.0;
  q = q * r + 1.0 / 40320.0;
  q = q * r + 1.0 / 5040.0;
  q = q * r + 1.0 / 720.0;
  q = q * r + 1.0 / 120.0;
  q = q * r + 1.0 / 24.0;
  q = q * r + 1.0 / 6.0;
  q = q * r + 0.5;
  q = q * r + 1.0;
  q = q * r + 1.0;
  const std::int32_t ni = static_cast<std::int32_t>(n);
  const std::int32_t n1 = ni / 2;
  const std::int32_t n2 = ni - n1;
  const double s1 =
      std::bit_cast<double>(static_cast<std::uint64_t>(static_cast<std::int64_t>(n1) + 1023)
                            << 52);
  const double s2 =
      std::bit_cast<double>(static_cast<std::uint64_t>(static_cast<std::int64_t>(n2) + 1023)
                            << 52);
  double result = (q * s1) * s2;
  result = x < -745.2 ? 0.0 : result;
  result = x > 709.7 ? std::bit_cast<double>(0x7ff0000000000000ULL) : result;
  return result;
}

}  // namespace ebem

#include "src/post/safety.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace ebem::post {

double derating_factor(const SafetyCriteria& criteria) {
  if (criteria.surface_resistivity <= 0.0) return 1.0;
  // IEEE Std 80-2000 eq. (27), the empirical approximation of C_s.
  return 1.0 - (0.09 * (1.0 - criteria.soil_resistivity / criteria.surface_resistivity)) /
                   (2.0 * criteria.surface_layer_thickness + 0.09);
}

namespace {
double dalziel_k(const SafetyCriteria& criteria) {
  return criteria.body_weight_50kg ? 0.116 : 0.157;
}
double effective_surface_rho(const SafetyCriteria& criteria) {
  return criteria.surface_resistivity > 0.0 ? criteria.surface_resistivity
                                            : criteria.soil_resistivity;
}
}  // namespace

double tolerable_touch_voltage(const SafetyCriteria& criteria) {
  EBEM_EXPECT(criteria.fault_duration > 0.0, "fault duration must be positive");
  const double cs = derating_factor(criteria);
  const double rho_s = effective_surface_rho(criteria);
  // E_touch = (1000 + 1.5 Cs rho_s) * k / sqrt(t_s)  (IEEE Std 80 eq. 32/33).
  return (1000.0 + 1.5 * cs * rho_s) * dalziel_k(criteria) / std::sqrt(criteria.fault_duration);
}

double tolerable_step_voltage(const SafetyCriteria& criteria) {
  EBEM_EXPECT(criteria.fault_duration > 0.0, "fault duration must be positive");
  const double cs = derating_factor(criteria);
  const double rho_s = effective_surface_rho(criteria);
  // E_step = (1000 + 6 Cs rho_s) * k / sqrt(t_s)  (IEEE Std 80 eq. 29/30).
  return (1000.0 + 6.0 * cs * rho_s) * dalziel_k(criteria) / std::sqrt(criteria.fault_duration);
}

SafetyAssessment assess_safety(const PotentialEvaluator& evaluator, double gpr, double x0,
                               double x1, double y0, double y1, std::size_t nx, std::size_t ny,
                               const SafetyCriteria& criteria) {
  EBEM_EXPECT(gpr > 0.0, "GPR must be positive");
  SafetyAssessment assessment;
  assessment.gpr = gpr;
  assessment.tolerable_touch = tolerable_touch_voltage(criteria);
  assessment.tolerable_step = tolerable_step_voltage(criteria);

  const PotentialEvaluator::SurfaceGrid grid = evaluator.surface_grid(x0, x1, y0, y1, nx, ny);

  // Step probes: potential 1 m away in +x and +y from every grid sample.
  std::vector<geom::Vec3> step_points;
  step_points.reserve(2 * nx * ny);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const double x = grid.x0 + grid.dx * static_cast<double>(i);
      const double y = grid.y0 + grid.dy * static_cast<double>(j);
      step_points.push_back({x + 1.0, y, 0.0});
      step_points.push_back({x, y + 1.0, 0.0});
    }
  }
  const std::vector<double> stepped = evaluator.at(step_points);

  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const double x = grid.x0 + grid.dx * static_cast<double>(i);
      const double y = grid.y0 + grid.dy * static_cast<double>(j);
      const double v = grid.at(i, j);
      const double touch = gpr - v;
      if (touch > assessment.max_touch_voltage) {
        assessment.max_touch_voltage = touch;
        assessment.worst_touch_point = {x, y, 0.0};
      }
      const std::size_t base = 2 * (j * nx + i);
      for (std::size_t dir = 0; dir < 2; ++dir) {
        const double step = std::abs(v - stepped[base + dir]);
        if (step > assessment.max_step_voltage) {
          assessment.max_step_voltage = step;
          assessment.worst_step_point = {x, y, 0.0};
        }
      }
    }
  }
  return assessment;
}

double mesh_voltage(const PotentialEvaluator& evaluator, double gpr, double x0, double x1,
                    double y0, double y1, std::size_t nx, std::size_t ny) {
  const PotentialEvaluator::SurfaceGrid grid = evaluator.surface_grid(x0, x1, y0, y1, nx, ny);
  double worst = 0.0;
  for (double v : grid.values) worst = std::max(worst, gpr - v);
  return worst;
}

}  // namespace ebem::post

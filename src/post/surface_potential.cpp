#include "src/post/surface_potential.hpp"

#include "src/common/error.hpp"
#include "src/parallel/parallel_for.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/soil/kernel_factory.hpp"

namespace ebem::post {

namespace {

bem::IntegratorOptions evaluator_integrator_options(const bem::BemModel& model,
                                                    const PotentialOptions& options) {
  bem::IntegratorOptions integrator = options.integrator;
  if (model.soil().layer_count() > 2) {
    integrator.inner = bem::InnerIntegration::kSubtracted;
  }
  return integrator;
}

}  // namespace

PotentialEvaluator::PotentialEvaluator(const bem::BemModel& model, std::vector<double> sigma,
                                       const PotentialOptions& options)
    : model_(model),
      sigma_(std::move(sigma)),
      options_(options),
      kernel_(soil::make_kernel(model.soil(), options.series, options.hankel)),
      integrator_(*kernel_, evaluator_integrator_options(model, options)) {
  EBEM_EXPECT(sigma_.size() == model.dof_count(options.integrator.basis),
              "sigma size does not match the model's DoF count");
}

double PotentialEvaluator::at(geom::Vec3 x) const {
  const bem::BasisKind basis = options_.integrator.basis;
  const std::size_t locals = model_.local_dof_count(basis);
  double v = 0.0;
  for (std::size_t e = 0; e < model_.element_count(); ++e) {
    const auto influence = integrator_.potential_influence(x, model_.elements()[e]);
    for (std::size_t q = 0; q < locals; ++q) {
      v += influence[q] * sigma_[model_.global_dof(basis, e, q)];
    }
  }
  return v;
}

std::vector<double> PotentialEvaluator::at(const std::vector<geom::Vec3>& points) const {
  std::vector<double> values(points.size(), 0.0);
  if (points.empty()) return values;
  if (options_.num_threads <= 1) {
    for (std::size_t p = 0; p < points.size(); ++p) values[p] = at(points[p]);
    return values;
  }
  par::ThreadPool pool(options_.num_threads);
  par::parallel_for(pool, points.size(), options_.schedule,
                    [&](std::size_t p) { values[p] = at(points[p]); });
  return values;
}

PotentialEvaluator::SurfaceGrid PotentialEvaluator::surface_grid(double x0, double x1, double y0,
                                                                 double y1, std::size_t nx,
                                                                 std::size_t ny) const {
  EBEM_EXPECT(nx >= 2 && ny >= 2, "surface grid needs at least 2x2 samples");
  EBEM_EXPECT(x1 > x0 && y1 > y0, "surface grid bounds must be increasing");
  SurfaceGrid grid;
  grid.x0 = x0;
  grid.y0 = y0;
  grid.nx = nx;
  grid.ny = ny;
  grid.dx = (x1 - x0) / static_cast<double>(nx - 1);
  grid.dy = (y1 - y0) / static_cast<double>(ny - 1);
  std::vector<geom::Vec3> points;
  points.reserve(nx * ny);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      points.push_back({x0 + grid.dx * static_cast<double>(i),
                        y0 + grid.dy * static_cast<double>(j), 0.0});
    }
  }
  grid.values = at(points);
  return grid;
}

std::vector<double> PotentialEvaluator::profile(geom::Vec3 a, geom::Vec3 b, std::size_t n) const {
  EBEM_EXPECT(n >= 2, "profile needs at least two samples");
  std::vector<geom::Vec3> points;
  points.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k) / static_cast<double>(n - 1);
    points.push_back(a + t * (b - a));
  }
  return at(points);
}

}  // namespace ebem::post

// Potential evaluation at arbitrary points once the leakage current is
// known — paper eq. (4.2): V(x) = sum_i sigma_i V_i(x).
//
// Drawing the earth-surface potential contours of Figs. 5.2/5.4 needs this
// at thousands of points; the paper names it the second massively
// parallelizable stage, so evaluation is parallel over points.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/bem/analysis.hpp"
#include "src/bem/element.hpp"
#include "src/geom/vec3.hpp"
#include "src/parallel/schedule.hpp"

namespace ebem::post {

struct PotentialOptions {
  bem::IntegratorOptions integrator;
  soil::SeriesOptions series;
  soil::HankelOptions hankel{.tolerance = 1e-7};  ///< for 3+ layer soils
  std::size_t num_threads = 1;
  par::Schedule schedule = par::Schedule::dynamic(4);
};

/// Evaluates V at points given a solved leakage distribution.
class PotentialEvaluator {
 public:
  PotentialEvaluator(const bem::BemModel& model, std::vector<double> sigma,
                     const PotentialOptions& options = {});

  /// Potential at one point (x.z <= 0; use z = 0 for the earth surface).
  [[nodiscard]] double at(geom::Vec3 x) const;

  /// Potentials at many points, parallel over points.
  [[nodiscard]] std::vector<double> at(const std::vector<geom::Vec3>& points) const;

  /// Potentials on a regular surface grid (z = 0): rows sweep y, columns x.
  struct SurfaceGrid {
    double x0 = 0.0, y0 = 0.0;
    double dx = 0.0, dy = 0.0;
    std::size_t nx = 0, ny = 0;
    std::vector<double> values;  ///< row-major, values[j * nx + i]

    [[nodiscard]] double at(std::size_t i, std::size_t j) const { return values[j * nx + i]; }
  };
  [[nodiscard]] SurfaceGrid surface_grid(double x0, double x1, double y0, double y1,
                                         std::size_t nx, std::size_t ny) const;

  /// Potential profile along the straight segment a->b (n samples inclusive).
  [[nodiscard]] std::vector<double> profile(geom::Vec3 a, geom::Vec3 b, std::size_t n) const;

  [[nodiscard]] const bem::BemModel& model() const { return model_; }
  [[nodiscard]] const std::vector<double>& sigma() const { return sigma_; }

 private:
  const bem::BemModel& model_;
  std::vector<double> sigma_;
  PotentialOptions options_;
  std::unique_ptr<soil::PointKernel> kernel_;
  bem::Integrator integrator_;
};

}  // namespace ebem::post

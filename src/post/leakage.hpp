// Leakage-current-density post-processing (paper eq. 2.2 / 4.1).
//
// The solved sigma_i are the nodal (or per-element) leakage currents per
// unit axial length [A/m]; design reviews look at where the electrode works
// hardest: edge and corner conductors leak the most (the classical edge
// effect), and rods reaching a conductive layer carry disproportionate
// current. This module derives per-element densities, surface current
// densities on the conductor wall, and the distribution statistics.
#pragma once

#include <cstddef>
#include <vector>

#include "src/bem/analysis.hpp"
#include "src/bem/element.hpp"

namespace ebem::post {

/// Leakage summary for one boundary element.
struct ElementLeakage {
  std::size_t element = 0;
  double mean_line_density = 0.0;     ///< average lambda over the element [A/m]
  double surface_density = 0.0;       ///< sigma on the wall, lambda/(2 pi a) [A/m^2]
  double current = 0.0;               ///< total current leaked by the element [A]
  geom::Vec3 midpoint;
  std::size_t layer = 0;
};

struct LeakageStats {
  double total_current = 0.0;   ///< sum over elements = I_Gamma [A]
  double min_line_density = 0.0;
  double max_line_density = 0.0;
  double mean_line_density = 0.0;  ///< length-weighted mean [A/m]
  std::size_t hottest_element = 0; ///< element with the largest line density
  /// Current fraction leaked per soil layer (sums to 1).
  std::vector<double> layer_current_fraction;
};

/// Per-element leakage from a solved analysis (constant basis: the element
/// value; linear basis: the mean of its nodal values).
[[nodiscard]] std::vector<ElementLeakage> element_leakage(const bem::BemModel& model,
                                                          const bem::AnalysisResult& result,
                                                          bem::BasisKind basis);

/// Distribution statistics over the element leakage set.
[[nodiscard]] LeakageStats leakage_stats(const bem::BemModel& model,
                                         const std::vector<ElementLeakage>& leakage);

}  // namespace ebem::post

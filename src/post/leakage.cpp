#include "src/post/leakage.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"

namespace ebem::post {

std::vector<ElementLeakage> element_leakage(const bem::BemModel& model,
                                            const bem::AnalysisResult& result,
                                            bem::BasisKind basis) {
  EBEM_EXPECT(result.sigma.size() == model.dof_count(basis),
              "solution size does not match the model");
  std::vector<ElementLeakage> leakage;
  leakage.reserve(model.element_count());
  for (std::size_t e = 0; e < model.element_count(); ++e) {
    const bem::BemElement& element = model.elements()[e];
    ElementLeakage entry;
    entry.element = e;
    if (basis == bem::BasisKind::kLinear) {
      // Linear lambda over the element: mean of the nodal values.
      entry.mean_line_density =
          0.5 * (result.sigma[element.node_a] + result.sigma[element.node_b]);
    } else {
      entry.mean_line_density = result.sigma[e];
    }
    entry.surface_density = entry.mean_line_density / (2.0 * kPi * element.radius);
    entry.current = entry.mean_line_density * element.length;
    entry.midpoint = 0.5 * (element.a + element.b);
    entry.layer = element.layer;
    leakage.push_back(entry);
  }
  return leakage;
}

LeakageStats leakage_stats(const bem::BemModel& model,
                           const std::vector<ElementLeakage>& leakage) {
  EBEM_EXPECT(!leakage.empty(), "no leakage entries");
  LeakageStats stats;
  stats.min_line_density = leakage.front().mean_line_density;
  stats.max_line_density = leakage.front().mean_line_density;
  stats.layer_current_fraction.assign(model.soil().layer_count(), 0.0);
  double total_length = 0.0;
  double weighted = 0.0;
  for (const ElementLeakage& entry : leakage) {
    stats.total_current += entry.current;
    stats.layer_current_fraction[entry.layer] += entry.current;
    if (entry.mean_line_density > stats.max_line_density) {
      stats.max_line_density = entry.mean_line_density;
      stats.hottest_element = entry.element;
    }
    stats.min_line_density = std::min(stats.min_line_density, entry.mean_line_density);
    const double length = model.elements()[entry.element].length;
    total_length += length;
    weighted += entry.mean_line_density * length;
  }
  stats.mean_line_density = weighted / total_length;
  for (double& fraction : stats.layer_current_fraction) fraction /= stats.total_current;
  return stats;
}

}  // namespace ebem::post

// Contour output for surface-potential grids (Figs. 5.2 and 5.4).
//
// Two renderers: CSV (x, y, V) for external plotting, and a terminal ASCII
// contour map so the figure benches show the potential "bowl" directly in
// their logs.
#pragma once

#include <iosfwd>
#include <string>

#include "src/post/surface_potential.hpp"

namespace ebem::post {

/// Write the grid as "x,y,potential" rows.
void write_contour_csv(std::ostream& os, const PotentialEvaluator::SurfaceGrid& grid);

/// Render the grid as an ASCII contour map: each cell shows the potential
/// band (0-9 deciles of [min, max]); electrodes appear as the high bands.
[[nodiscard]] std::string ascii_contour(const PotentialEvaluator::SurfaceGrid& grid,
                                        std::size_t max_width = 72);

}  // namespace ebem::post

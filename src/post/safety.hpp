// Grounding-design safety parameters per IEEE Std 80 (paper refs [1, 2]).
//
// Touch voltage: GPR minus the surface potential at a reachable point.
// Step voltage: surface-potential difference between two points 1 m apart.
// Mesh voltage: the worst touch voltage over the grid area.
// Tolerable limits use the Dalziel body-current criterion with the
// surface-layer derating factor C_s.
#pragma once

#include <cstddef>
#include <vector>

#include "src/post/surface_potential.hpp"

namespace ebem::post {

/// Tolerable-limit inputs (IEEE Std 80-2000, clauses 8.3-8.4).
struct SafetyCriteria {
  double fault_duration = 0.5;          ///< t_s [s]
  double body_weight_50kg = true;       ///< 50 kg (k=0.116) vs 70 kg (k=0.157)
  double surface_resistivity = 0.0;     ///< rho_s of crushed-rock layer [Ohm m]; 0 = none
  double surface_layer_thickness = 0.1; ///< h_s [m]
  double soil_resistivity = 100.0;      ///< native soil rho at the surface [Ohm m]
};

/// Surface-layer derating factor C_s (IEEE Std 80 eq. 27).
[[nodiscard]] double derating_factor(const SafetyCriteria& criteria);

/// Maximum tolerable touch voltage E_touch [V].
[[nodiscard]] double tolerable_touch_voltage(const SafetyCriteria& criteria);

/// Maximum tolerable step voltage E_step [V].
[[nodiscard]] double tolerable_step_voltage(const SafetyCriteria& criteria);

struct SafetyAssessment {
  double gpr = 0.0;
  double max_touch_voltage = 0.0;  ///< over the sampled area
  double max_step_voltage = 0.0;   ///< over sampled 1 m spans
  double tolerable_touch = 0.0;
  double tolerable_step = 0.0;
  geom::Vec3 worst_touch_point;
  geom::Vec3 worst_step_point;

  [[nodiscard]] bool touch_safe() const { return max_touch_voltage <= tolerable_touch; }
  [[nodiscard]] bool step_safe() const { return max_step_voltage <= tolerable_step; }
};

/// Evaluate touch and step voltages over a rectangular surface patch sampled
/// nx x ny, with the given GPR. Step voltages are probed along +x and +y
/// 1 m spans from each sample.
[[nodiscard]] SafetyAssessment assess_safety(const PotentialEvaluator& evaluator, double gpr,
                                             double x0, double x1, double y0, double y1,
                                             std::size_t nx, std::size_t ny,
                                             const SafetyCriteria& criteria);

/// Mesh voltage: the maximum touch voltage inside the grid area (IEEE Std 80
/// calls this E_m; it governs the design in the grid interior).
[[nodiscard]] double mesh_voltage(const PotentialEvaluator& evaluator, double gpr, double x0,
                                  double x1, double y0, double y1, std::size_t nx,
                                  std::size_t ny);

}  // namespace ebem::post

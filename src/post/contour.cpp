#include "src/post/contour.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "src/common/error.hpp"

namespace ebem::post {

void write_contour_csv(std::ostream& os, const PotentialEvaluator::SurfaceGrid& grid) {
  os << "x,y,potential\n";
  for (std::size_t j = 0; j < grid.ny; ++j) {
    for (std::size_t i = 0; i < grid.nx; ++i) {
      const double x = grid.x0 + grid.dx * static_cast<double>(i);
      const double y = grid.y0 + grid.dy * static_cast<double>(j);
      os << x << ',' << y << ',' << grid.at(i, j) << '\n';
    }
  }
}

std::string ascii_contour(const PotentialEvaluator::SurfaceGrid& grid, std::size_t max_width) {
  EBEM_EXPECT(max_width >= 8, "contour width too small");
  const auto [min_it, max_it] = std::minmax_element(grid.values.begin(), grid.values.end());
  const double lo = *min_it;
  const double hi = *max_it;
  const double span = hi > lo ? hi - lo : 1.0;
  static constexpr char kBands[] = " .:-=+*#%@";

  // Downsample columns if the grid is wider than the terminal budget.
  const std::size_t stride = std::max<std::size_t>(1, grid.nx / max_width);
  std::ostringstream os;
  // Render top row last so +y points up in the terminal.
  for (std::size_t j = grid.ny; j-- > 0;) {
    for (std::size_t i = 0; i < grid.nx; i += stride) {
      const double t = (grid.at(i, j) - lo) / span;
      const auto band = static_cast<std::size_t>(t * 9.999);
      os << kBands[std::min<std::size_t>(band, 9)];
    }
    os << '\n';
  }
  os << "bands: ' '=" << lo << " .. '@'=" << hi << " (V)\n";
  return os.str();
}

}  // namespace ebem::post

#include "src/quad/gauss.hpp"

#include <cmath>
#include <map>
#include <mutex>

#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"

namespace ebem::quad {

namespace {

/// Evaluate the Legendre polynomial P_n and its derivative at x via the
/// standard three-term recurrence.
struct LegendreEval {
  double value;
  double derivative;
};

LegendreEval legendre(std::size_t n, double x) {
  double p_prev = 1.0;  // P_0
  double p = x;         // P_1
  if (n == 0) return {p_prev, 0.0};
  for (std::size_t k = 2; k <= n; ++k) {
    const double kd = static_cast<double>(k);
    const double p_next = ((2.0 * kd - 1.0) * x * p - (kd - 1.0) * p_prev) / kd;
    p_prev = p;
    p = p_next;
  }
  // P_n'(x) = n (x P_n - P_{n-1}) / (x^2 - 1)
  const double nd = static_cast<double>(n);
  const double derivative = nd * (x * p - p_prev) / (x * x - 1.0);
  return {p, derivative};
}

}  // namespace

Rule gauss_legendre(std::size_t n) {
  EBEM_EXPECT(n >= 1, "Gauss-Legendre order must be at least 1");
  Rule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  if (n == 1) {
    rule.nodes[0] = 0.0;
    rule.weights[0] = 2.0;
    return rule;
  }
  // Roots come in +/- pairs; solve for the positive half and mirror.
  const std::size_t half = (n + 1) / 2;
  for (std::size_t i = 0; i < half; ++i) {
    // Chebyshev-like initial guess for the i-th root (descending).
    double x = std::cos(kPi * (static_cast<double>(i) + 0.75) / (static_cast<double>(n) + 0.5));
    LegendreEval eval{};
    for (int iter = 0; iter < 100; ++iter) {
      eval = legendre(n, x);
      const double dx = eval.value / eval.derivative;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    eval = legendre(n, x);
    const double weight = 2.0 / ((1.0 - x * x) * eval.derivative * eval.derivative);
    rule.nodes[i] = -x;  // ascending order
    rule.nodes[n - 1 - i] = x;
    rule.weights[i] = weight;
    rule.weights[n - 1 - i] = weight;
  }
  if (n % 2 == 1) rule.nodes[n / 2] = 0.0;
  return rule;
}

const Rule& cached_gauss_legendre(std::size_t n) {
  static std::mutex mutex;
  static std::map<std::size_t, Rule> cache;
  std::scoped_lock lock(mutex);
  auto it = cache.find(n);
  if (it == cache.end()) it = cache.emplace(n, gauss_legendre(n)).first;
  return it->second;
}

}  // namespace ebem::quad

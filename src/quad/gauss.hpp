// Gauss–Legendre quadrature of arbitrary order.
//
// Rules are generated at run time by Newton iteration on the Legendre
// three-term recurrence (no tabulated coefficients), then cached. An n-point
// rule integrates polynomials of degree 2n-1 exactly on [-1, 1]; the BEM
// integrator maps rules onto element parameter ranges.
#pragma once

#include <cstddef>
#include <vector>

namespace ebem::quad {

/// Nodes and weights of a quadrature rule on the reference interval [-1, 1].
struct Rule {
  std::vector<double> nodes;
  std::vector<double> weights;

  [[nodiscard]] std::size_t size() const { return nodes.size(); }
};

/// Compute the n-point Gauss–Legendre rule on [-1, 1]. n must be >= 1.
[[nodiscard]] Rule gauss_legendre(std::size_t n);

/// Cached access to gauss_legendre(n); safe for concurrent readers once
/// warmed, and lazily warmed under a mutex otherwise.
[[nodiscard]] const Rule& cached_gauss_legendre(std::size_t n);

/// Integrate `f` over [a, b] with the n-point Gauss–Legendre rule.
template <typename F>
[[nodiscard]] double integrate(const F& f, double a, double b, std::size_t n) {
  const Rule& rule = cached_gauss_legendre(n);
  const double mid = 0.5 * (a + b);
  const double half = 0.5 * (b - a);
  double sum = 0.0;
  for (std::size_t i = 0; i < rule.size(); ++i) {
    sum += rule.weights[i] * f(mid + half * rule.nodes[i]);
  }
  return half * sum;
}

}  // namespace ebem::quad

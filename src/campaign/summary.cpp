#include "src/campaign/summary.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace ebem::campaign {

void StreamingMoments::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingMoments::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(std::max(m2_, 0.0) / static_cast<double>(count_ - 1));
}

namespace {

/// Linearly interpolated order statistic of a sorted sample (the "R-7"
/// definition: rank h = p (n-1), interpolated between floor and ceil).
double sorted_quantile(const std::vector<double>& sorted, double p) {
  EBEM_EXPECT(!sorted.empty(), "quantile of an empty sample");
  EBEM_EXPECT(p >= 0.0 && p <= 1.0, "quantile probability must be in [0, 1]");
  const double h = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(h);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace

P2Quantile::P2Quantile(double probability) : probability_(probability) {
  EBEM_EXPECT(probability > 0.0 && probability < 1.0,
              "P2Quantile probability must be in (0, 1)");
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    // Warm-up: keep the first five observations sorted in heights_.
    heights_[count_] = x;
    ++count_;
    std::sort(heights_.begin(), heights_.begin() + static_cast<std::ptrdiff_t>(count_));
    if (count_ == 5) {
      for (std::size_t i = 0; i < 5; ++i) positions_[i] = static_cast<double>(i + 1);
      desired_ = {1.0, 1.0 + 2.0 * probability_, 1.0 + 4.0 * probability_,
                  3.0 + 2.0 * probability_, 5.0};
    }
    return;
  }

  // Locate the cell, updating the extreme markers in place.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  ++count_;

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  const std::array<double, 5> increments = {0.0, probability_ / 2.0, probability_,
                                            (1.0 + probability_) / 2.0, 1.0};
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments[i];

  // Adjust the three interior markers toward their desired positions.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double gap_up = positions_[i + 1] - positions_[i];
    const double gap_down = positions_[i - 1] - positions_[i];
    if (!((d >= 1.0 && gap_up > 1.0) || (d <= -1.0 && gap_down < -1.0))) continue;
    const double sign = d >= 0.0 ? 1.0 : -1.0;
    // Piecewise-parabolic prediction; fall back to linear when it would
    // break marker monotonicity.
    const double parabolic =
        heights_[i] +
        sign / (positions_[i + 1] - positions_[i - 1]) *
            ((positions_[i] - positions_[i - 1] + sign) * (heights_[i + 1] - heights_[i]) /
                 gap_up +
             (positions_[i + 1] - positions_[i] - sign) * (heights_[i] - heights_[i - 1]) /
                 (positions_[i] - positions_[i - 1]));
    if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
      heights_[i] = parabolic;
    } else {
      const std::size_t j = sign > 0.0 ? i + 1 : i - 1;
      heights_[i] += sign * (heights_[j] - heights_[i]) /
                     (positions_[j] - positions_[i]);
    }
    positions_[i] += sign;
  }
}

double P2Quantile::value() const {
  EBEM_EXPECT(count_ > 0, "P2Quantile::value before any observation");
  if (count_ >= 5) return heights_[2];
  const std::vector<double> prefix(heights_.begin(),
                                   heights_.begin() + static_cast<std::ptrdiff_t>(count_));
  return sorted_quantile(prefix, probability_);
}

MetricSummary::MetricSummary(QuantileMode mode) : mode_(mode) {
  if (mode_ == QuantileMode::kP2) {
    trackers_.reserve(kSummaryProbabilities.size());
    for (const double p : kSummaryProbabilities) trackers_.emplace_back(p);
  }
}

void MetricSummary::add(double x) {
  moments_.add(x);
  if (mode_ == QuantileMode::kExact) {
    samples_.push_back(x);
  } else {
    for (P2Quantile& tracker : trackers_) tracker.add(x);
  }
}

double MetricSummary::quantile(double p) const {
  if (mode_ == QuantileMode::kExact) {
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    return sorted_quantile(sorted, p);
  }
  for (const P2Quantile& tracker : trackers_) {
    if (tracker.probability() == p) return tracker.value();
  }
  throw InvalidArgument("kP2 summaries track only the kSummaryProbabilities quantiles");
}

std::optional<double> MetricSummary::confidence_half_width(double p, double z) const {
  EBEM_EXPECT(p > 0.0 && p < 1.0, "confidence bound probability must be in (0, 1)");
  EBEM_EXPECT(z > 0.0, "confidence bound z must be positive");
  if (mode_ != QuantileMode::kExact) return std::nullopt;
  const double n = static_cast<double>(samples_.size());
  const double spread = z * std::sqrt(n * p * (1.0 - p));
  const double lo_rank = std::floor(n * p - spread);  // 1-based ranks
  const double hi_rank = std::ceil(n * p + spread) + 1.0;
  if (lo_rank < 1.0 || hi_rank > n) return std::nullopt;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double lo = sorted[static_cast<std::size_t>(lo_rank) - 1];
  const double hi = sorted[static_cast<std::size_t>(hi_rank) - 1];
  return 0.5 * (hi - lo);
}

}  // namespace ebem::campaign

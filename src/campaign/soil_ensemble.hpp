// campaign::SoilEnsemble — stochastic two-layer soils around a fitted point.
//
// The paper's layered soil parameters are estimates: they come from Wenner
// soundings through estimation::fit_two_layer, and the fit's residuals say
// how well (rho1, rho2, H) are actually pinned down. A safety assessment
// against the single fitted soil is a point answer to a distributional
// question; this module generates the distribution — a deterministic,
// seeded ensemble of two-layer soils sampled lognormally around the
// nominal point, stratified per parameter by campaign::Sampler so small
// campaigns already cover the marginals.
//
// Two ways to set the spread: SoilDistribution::from_fit ingests the
// per-parameter sigmas the Wenner fit exposes (the honest option), and
// SoilDistribution::relative sets ad-hoc +-X% bands when no sounding is
// available. Sampling is lognormal in (rho1, rho2, H) — matching the fit's
// log parameterization — with the normal deviate truncated at
// +-truncate_sigmas so no scenario strays into unphysical territory.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/campaign/sampler.hpp"
#include "src/estimation/wenner.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::campaign {

/// Lognormal spread of the two-layer parameters around a nominal soil.
struct SoilDistribution {
  soil::LayeredSoil nominal = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  double sigma_log_rho1 = 0.0;  ///< 1-sigma of log rho1
  double sigma_log_rho2 = 0.0;  ///< 1-sigma of log rho2
  double sigma_log_h = 0.0;     ///< 1-sigma of log H
  /// Truncation of the sampled normal deviate (a bound/validation guard:
  /// every scenario stays within exp(+-truncate_sigmas * sigma) of the
  /// nominal parameter).
  double truncate_sigmas = 3.0;

  /// Spread from a Wenner fit's residual-based uncertainty; the nominal
  /// point is the fitted soil. Throws ebem::InvalidArgument when the fit
  /// carries no valid uncertainty (fit.uncertainty_valid == false) — fall
  /// back to relative() bands in that case.
  [[nodiscard]] static SoilDistribution from_fit(const estimation::TwoLayerFit& fit);

  /// Ad-hoc spread: a +-X relative band per parameter maps to a lognormal
  /// sigma of log(1 + X), e.g. relative(soil, 0.2, 0.2, 0.3) for +-20%
  /// resistivities and +-30% layer depth at one sigma.
  [[nodiscard]] static SoilDistribution relative(const soil::LayeredSoil& nominal,
                                                 double rel_rho1, double rel_rho2, double rel_h);

  /// Throws ebem::InvalidArgument unless the nominal soil is two-layer, all
  /// sigmas are finite and >= 0, and the truncation is positive.
  void validate() const;
};

/// A fixed-size, seeded ensemble of two-layer soils. scenario(i) is a pure
/// function of (distribution, count, seed, i): any subset of scenarios can
/// be re-generated independently, in any order, on any number of workers.
class SoilEnsemble {
 public:
  /// Validates the distribution; throws ebem::InvalidArgument on a zero
  /// count.
  SoilEnsemble(SoilDistribution distribution, std::size_t count, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const { return sampler_.count(); }
  [[nodiscard]] std::uint64_t seed() const { return sampler_.seed(); }
  [[nodiscard]] const SoilDistribution& distribution() const { return distribution_; }

  /// The i-th sampled soil (deterministic).
  [[nodiscard]] soil::LayeredSoil scenario(std::size_t index) const;

 private:
  SoilDistribution distribution_;
  Sampler sampler_;
};

}  // namespace ebem::campaign

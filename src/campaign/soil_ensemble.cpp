#include "src/campaign/soil_ensemble.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace ebem::campaign {

SoilDistribution SoilDistribution::from_fit(const estimation::TwoLayerFit& fit) {
  EBEM_EXPECT(fit.uncertainty_valid,
              "SoilDistribution::from_fit: the Wenner fit carries no valid uncertainty "
              "(need > 3 readings and a resolvable two-layer curve); use "
              "SoilDistribution::relative instead");
  SoilDistribution distribution;
  distribution.nominal = fit.soil;
  distribution.sigma_log_rho1 = fit.sigma_log_rho1;
  distribution.sigma_log_rho2 = fit.sigma_log_rho2;
  distribution.sigma_log_h = fit.sigma_log_h;
  return distribution;
}

SoilDistribution SoilDistribution::relative(const soil::LayeredSoil& nominal, double rel_rho1,
                                            double rel_rho2, double rel_h) {
  EBEM_EXPECT(rel_rho1 >= 0.0 && rel_rho2 >= 0.0 && rel_h >= 0.0,
              "relative parameter bands must be >= 0");
  SoilDistribution distribution;
  distribution.nominal = nominal;
  distribution.sigma_log_rho1 = std::log1p(rel_rho1);
  distribution.sigma_log_rho2 = std::log1p(rel_rho2);
  distribution.sigma_log_h = std::log1p(rel_h);
  return distribution;
}

void SoilDistribution::validate() const {
  EBEM_EXPECT(nominal.layer_count() == 2,
              "SoilDistribution needs a two-layer nominal soil (rho1, rho2, H)");
  for (const double sigma : {sigma_log_rho1, sigma_log_rho2, sigma_log_h}) {
    EBEM_EXPECT(std::isfinite(sigma) && sigma >= 0.0,
                "lognormal sigmas must be finite and >= 0");
  }
  EBEM_EXPECT(truncate_sigmas > 0.0, "truncate_sigmas must be positive");
}

SoilEnsemble::SoilEnsemble(SoilDistribution distribution, std::size_t count, std::uint64_t seed)
    : distribution_(distribution), sampler_(seed, 3, count) {
  distribution_.validate();
}

soil::LayeredSoil SoilEnsemble::scenario(std::size_t index) const {
  const double cap = distribution_.truncate_sigmas;
  const auto deviate = [&](std::size_t dimension) {
    return std::clamp(sampler_.normal(index, dimension), -cap, cap);
  };
  const double rho1 = distribution_.nominal.resistivity(0) *
                      std::exp(distribution_.sigma_log_rho1 * deviate(0));
  const double rho2 = distribution_.nominal.resistivity(1) *
                      std::exp(distribution_.sigma_log_rho2 * deviate(1));
  const double h =
      distribution_.nominal.interface_depth(0) * std::exp(distribution_.sigma_log_h * deviate(2));
  return soil::LayeredSoil::two_layer(1.0 / rho1, 1.0 / rho2, h);
}

}  // namespace ebem::campaign

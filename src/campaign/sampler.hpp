// campaign::Sampler — deterministic, counter-based quasi-random sampling.
//
// Scenario campaigns need reproducible randomness: the i-th scenario of a
// seeded campaign must be the same soil (or damage pattern) no matter how
// many workers run the batch, in which order futures complete, or whether
// the campaign is re-run after an early stop. A stateful global RNG cannot
// give that — any reordering or restart changes the stream — so this
// sampler is *counter-based*: sample i, dimension d is a pure function of
// (seed, i, d), built from the splitmix64 finalizer the codebase already
// trusts for sharded hashing.
//
// On top of the raw counter hash the sampler stratifies: per dimension it
// lays a Latin-hypercube over the campaign size (a seeded permutation of
// the strata, jittered within each stratum), so N scenarios cover each
// marginal with one sample per 1/N-quantile bin instead of the clumps plain
// Monte Carlo produces at small N. Variance of campaign percentiles drops
// accordingly while every sample stays individually addressable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ebem::campaign {

/// Standard normal inverse CDF (Acklam's rational approximation, refined by
/// one Halley step against std::erfc; |relative error| < 1e-13 over
/// p in (1e-300, 1 - 1e-16)). Exposed for tests and for mapping the
/// sampler's stratified uniforms onto Gaussian parameter perturbations.
[[nodiscard]] double inverse_normal_cdf(double p);

/// Stratified Latin-hypercube sampler over a fixed campaign size. All state
/// is built deterministically from the seed in the constructor; sampling is
/// const, thread-safe and O(1) per call.
class Sampler {
 public:
  /// `count` strata per dimension (the campaign size), `dimensions` margins.
  /// Throws ebem::InvalidArgument on zero count or dimensions.
  Sampler(std::uint64_t seed, std::size_t dimensions, std::size_t count);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] std::size_t dimensions() const { return permutations_.size(); }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Stratified uniform in (0, 1): sample i lands in stratum
  /// perm_d(i)/count, jittered within the stratum by a counter hash.
  [[nodiscard]] double uniform01(std::size_t sample, std::size_t dimension) const;

  /// inverse_normal_cdf(uniform01(...)): a stratified standard normal.
  [[nodiscard]] double normal(std::size_t sample, std::size_t dimension) const;

 private:
  std::uint64_t seed_ = 0;
  std::size_t count_ = 0;
  /// One seeded stratum permutation per dimension (index -> stratum).
  std::vector<std::vector<std::uint32_t>> permutations_;
};

}  // namespace ebem::campaign

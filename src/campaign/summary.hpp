// campaign::Summary — streaming distributional statistics of a campaign.
//
// A campaign reduces hundreds of per-scenario safety answers to a handful
// of numbers: mean/stddev and the P5/P50/P95/P99 of equivalent resistance,
// GPR and touch/step margins. Two quantile back-ends are provided:
//
//  * kExact keeps every observation and answers any quantile by linearly
//    interpolated order statistic — O(n) memory, and the only mode that can
//    also bound its own error (confidence_half_width uses the binomial
//    order-statistic interval, which the runner's early-stop rule consumes);
//  * kP2 is the Jain & Chlamtac P-squared estimator — five markers per
//    tracked quantile, O(1) memory, for campaigns too large to buffer.
//
// Both are insertion-order-dependent in principle (P² genuinely, exact only
// through ties in interpolation — it is order-independent in practice), so
// campaign::Runner commits observations in scenario-index order regardless
// of completion order; that is what makes campaign percentiles bit-identical
// across worker counts.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <vector>

namespace ebem::campaign {

/// Welford single-pass moments: numerically stable mean/stddev plus extrema.
class StreamingMoments {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample standard deviation (n-1 denominator); 0 below two observations.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// P-squared (Jain & Chlamtac 1985) streaming estimator of one quantile:
/// five markers whose heights track the quantile through parabolic
/// adjustment. Exact for the first five observations, O(1) memory after.
class P2Quantile {
 public:
  /// Throws ebem::InvalidArgument unless 0 < probability < 1.
  explicit P2Quantile(double probability);

  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double probability() const { return probability_; }
  /// Current estimate; throws ebem::InvalidArgument before any observation.
  [[nodiscard]] double value() const;

 private:
  double probability_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};    ///< marker heights (sorted prefix while count < 5)
  std::array<double, 5> positions_{};  ///< actual marker positions, 1-based
  std::array<double, 5> desired_{};    ///< desired marker positions
};

enum class QuantileMode {
  kExact,  ///< buffer all observations; any quantile + confidence bound
  kP2,     ///< O(1) memory; only the tracked quantiles, no bound
};

/// The campaign's reported quantiles, in probability order.
inline constexpr std::array<double, 4> kSummaryProbabilities = {0.05, 0.50, 0.95, 0.99};

/// One metric's streaming summary: moments plus the tracked quantiles.
class MetricSummary {
 public:
  explicit MetricSummary(QuantileMode mode = QuantileMode::kExact);

  void add(double x);

  [[nodiscard]] std::size_t count() const { return moments_.count(); }
  [[nodiscard]] const StreamingMoments& moments() const { return moments_; }

  /// Quantile estimate. kExact answers any 0 <= p <= 1; kP2 answers only
  /// the probabilities in kSummaryProbabilities (throws otherwise). Throws
  /// ebem::InvalidArgument before any observation.
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] double p5() const { return quantile(0.05); }
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  /// Distribution-free half-width of the ~`z`-sigma confidence interval on
  /// quantile `p`, from the binomial order-statistic bracket: half the
  /// spread between the order statistics at ranks np -+ z sqrt(np(1-p)).
  /// nullopt in kP2 mode or while either rank falls outside the sample —
  /// i.e. while the data cannot yet bound that quantile at all.
  [[nodiscard]] std::optional<double> confidence_half_width(double p, double z = 1.96) const;

 private:
  QuantileMode mode_;
  StreamingMoments moments_;
  std::vector<double> samples_;      ///< kExact only
  std::vector<P2Quantile> trackers_; ///< kP2 only, one per kSummaryProbabilities
};

}  // namespace ebem::campaign

#include "src/campaign/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <map>
#include <utility>

#include "src/bem/element.hpp"
#include "src/common/error.hpp"
#include "src/post/surface_potential.hpp"

namespace ebem::campaign {

SoilSweep::SoilSweep(std::vector<geom::Conductor> conductors, geom::MeshOptions mesh,
                     SoilEnsemble ensemble)
    : conductors_(std::move(conductors)), mesh_(mesh), ensemble_(std::move(ensemble)) {
  EBEM_EXPECT(!conductors_.empty(), "SoilSweep needs a non-empty conductor design");
}

bem::BemModel SoilSweep::model(std::size_t index) const {
  const soil::LayeredSoil soil = ensemble_.scenario(index);
  const geom::Mesh mesh = geom::Mesh::build(bem::split_at_interfaces(conductors_, soil), mesh_);
  return bem::BemModel(mesh, soil);
}

double SoilSweep::surface_soil_resistivity(std::size_t index) const {
  return ensemble_.scenario(index).resistivity(0);
}

void CampaignOptions::validate() const {
  EBEM_EXPECT(window >= 1, "campaign window must be at least 1");
  EBEM_EXPECT(fault_current >= 0.0, "fault_current must be >= 0 (0 = fixed study GPR)");
  EBEM_EXPECT(early_stop.quantile > 0.0 && early_stop.quantile < 1.0,
              "early_stop.quantile must be in (0, 1)");
  EBEM_EXPECT(early_stop.relative_half_width >= 0.0,
              "early_stop.relative_half_width must be >= 0 (0 = disabled)");
  EBEM_EXPECT(early_stop.z > 0.0, "early_stop.z must be positive");
  if (early_stop.relative_half_width > 0.0) {
    EBEM_EXPECT(early_stop.min_scenarios >= 2, "early stop needs min_scenarios >= 2");
    EBEM_EXPECT(quantiles == QuantileMode::kExact,
                "early stopping needs exact quantiles (the confidence bracket is an "
                "order-statistic interval)");
  }
  if (safety.has_value()) {
    EBEM_EXPECT(safety->x1 > safety->x0 && safety->y1 > safety->y0,
                "safety patch must have positive area");
    EBEM_EXPECT(safety->nx >= 1 && safety->ny >= 1, "safety patch needs sample points");
  }
}

Runner::Runner(engine::Study& study, CampaignOptions options)
    : study_(&study), options_(std::move(options)) {
  options_.validate();
}

namespace {

/// Everything harvested from one completed run, copied out so the future
/// (and the run's resources — assembled matrix, factor) can be released in
/// completion order even though commits happen in index order.
struct Harvest {
  bem::AnalysisResult result;
  PhaseReport report;
  bem::CongruenceCacheStats cache_delta;
};

struct Pending {
  std::size_t index = 0;
  engine::RunFuture future;
};

}  // namespace

CampaignResult Runner::run(const ScenarioSource& source) {
  const std::size_t total = source.size();
  EBEM_EXPECT(total > 0, "campaign source is empty");
  const auto start = std::chrono::steady_clock::now();

  CampaignResult out;
  out.scenarios = total;
  out.resistance = MetricSummary(options_.quantiles);
  out.gpr = MetricSummary(options_.quantiles);
  out.touch_margin = MetricSummary(options_.quantiles);
  out.step_margin = MetricSummary(options_.quantiles);

  std::deque<Pending> window;
  std::map<std::size_t, Harvest> harvested;
  std::size_t next_submit = 0;
  std::size_t next_commit = 0;

  const auto harvest_ready = [&](bool block_on_front) {
    if (block_on_front && !window.empty()) window.front().future.wait();
    for (auto it = window.begin(); it != window.end();) {
      if (!it->future.ready()) {
        ++it;
        continue;
      }
      Harvest h;
      h.report = it->future.report();
      h.cache_delta = it->future.cache_delta();
      h.result = it->future.take();  // rethrows a failed scenario
      harvested.emplace(it->index, std::move(h));
      it = window.erase(it);
    }
  };

  const auto commit_one = [&](std::size_t index, Harvest& h) {
    const double req = h.result.equivalent_resistance;
    const double scenario_gpr =
        options_.fault_current > 0.0 ? options_.fault_current * req : study_->options().gpr;
    out.resistance.add(req);
    out.gpr.add(scenario_gpr);

    if (options_.safety.has_value()) {
      const SafetyPatch& patch = *options_.safety;
      // Re-derive the model: the submitted copy died with the run, and the
      // potential evaluator borrows the model by reference.
      const bem::BemModel model = source.model(index);
      std::vector<double> sigma = h.result.sigma;
      if (options_.fault_current > 0.0) {
        // sigma came out scaled to the study's fixed GPR; rescale to this
        // scenario's rise (everything is proportional to the GPR).
        const double factor = scenario_gpr / study_->options().gpr;
        for (double& s : sigma) s *= factor;
      }
      const post::PotentialEvaluator evaluator(model, std::move(sigma), patch.potential);
      post::SafetyCriteria criteria = patch.criteria;
      criteria.soil_resistivity = source.surface_soil_resistivity(index);
      const post::SafetyAssessment assessment =
          post::assess_safety(evaluator, scenario_gpr, patch.x0, patch.x1, patch.y0, patch.y1,
                              patch.nx, patch.ny, criteria);
      out.touch_margin.add(assessment.tolerable_touch - assessment.max_touch_voltage);
      out.step_margin.add(assessment.tolerable_step - assessment.max_step_voltage);
      if (!assessment.touch_safe()) ++out.touch_violations;
      if (!assessment.step_safe()) ++out.step_violations;
    }

    out.cache.hits += h.cache_delta.hits;
    out.cache.misses += h.cache_delta.misses;
    out.phases.merge(h.report);
    ++out.completed;
  };

  const auto should_stop = [&]() {
    const CampaignEarlyStop& stop = options_.early_stop;
    if (stop.relative_half_width <= 0.0) return false;
    if (out.completed < stop.min_scenarios) return false;
    // Watch equivalent resistance: it varies in every campaign mode (the
    // GPR is constant when fault_current == 0, and proportional to R_eq
    // otherwise, so its relative tightness is identical).
    const std::optional<double> half_width =
        out.resistance.confidence_half_width(stop.quantile, stop.z);
    if (!half_width.has_value()) return false;
    const double scale = std::abs(out.resistance.quantile(stop.quantile));
    return *half_width <= stop.relative_half_width * std::max(scale, 1e-300);
  };

  while (next_commit < total) {
    // Fill the window up to the backpressure bound.
    while (next_submit < total && window.size() < options_.window) {
      window.push_back({next_submit, study_->submit(source.model(next_submit))});
      ++next_submit;
      out.peak_in_flight = std::max(out.peak_in_flight, window.size());
    }

    // Harvest in completion order; block on the oldest run only when the
    // next scenario to commit has not completed yet.
    harvest_ready(/*block_on_front=*/!harvested.contains(next_commit));

    // Commit strictly in scenario-index order — the determinism contract:
    // the streaming summaries see observations in the same order no matter
    // how completions interleaved.
    while (true) {
      const auto it = harvested.find(next_commit);
      if (it == harvested.end()) break;
      commit_one(it->first, it->second);
      harvested.erase(it);
      ++next_commit;
      if (should_stop()) {
        out.stopped_early = true;
        // Discard the tail: cancel what never started, wait out the rest
        // (their reports merge into the engine's session sink as usual but
        // not into this campaign's statistics).
        for (Pending& pending : window) (void)pending.future.cancel();
        for (Pending& pending : window) pending.future.wait();
        out.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                               .count();
        return out;
      }
    }
  }

  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return out;
}

}  // namespace ebem::campaign

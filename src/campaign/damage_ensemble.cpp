#include "src/campaign/damage_ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/error.hpp"
#include "src/common/hash.hpp"

namespace ebem::campaign {

namespace {

/// Counter hash of (seed, scenario, purpose, item) -> uniform in [0, 1).
[[nodiscard]] double damage_unit(std::uint64_t seed, std::size_t scenario, std::uint64_t purpose,
                                 std::size_t item) {
  const std::uint64_t word =
      splitmix64(hash_combine(hash_combine(hash_combine(seed, purpose), scenario), item));
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kPurposeSelect = 0x11;
constexpr std::uint64_t kPurposeMode = 0x22;

}  // namespace

void DamageOptions::validate(std::size_t conductor_count) const {
  EBEM_EXPECT(min_breaks >= 1 && min_breaks <= max_breaks,
              "DamageOptions needs 1 <= min_breaks <= max_breaks");
  EBEM_EXPECT(max_breaks < conductor_count,
              "max_breaks must leave at least one conductor intact");
  EBEM_EXPECT(removal_probability >= 0.0 && removal_probability <= 1.0,
              "removal_probability must be in [0, 1]");
  EBEM_EXPECT(gap_fraction > 0.0 && gap_fraction < 1.0,
              "gap_fraction must be in (0, 1) so segmentation leaves two stubs");
}

DamageEnsemble::DamageEnsemble(std::vector<geom::Conductor> base, soil::LayeredSoil soil,
                               DamageOptions options, std::size_t count, std::uint64_t seed)
    : base_(std::move(base)), soil_(std::move(soil)), options_(options),
      sampler_(seed, 1, count) {
  EBEM_EXPECT(!base_.empty(), "DamageEnsemble needs a non-empty base design");
  options_.validate(base_.size());
}

std::vector<ConductorBreak> DamageEnsemble::breaks(std::size_t index) const {
  EBEM_EXPECT(index < size(), "damage scenario index out of range");
  // Break count: stratified over the ensemble so every severity in
  // [min_breaks, max_breaks] appears in near-equal proportion.
  const double u = sampler_.uniform01(index, 0);
  const std::size_t span = options_.max_breaks - options_.min_breaks + 1;
  const std::size_t k =
      options_.min_breaks +
      std::min(span - 1, static_cast<std::size_t>(u * static_cast<double>(span)));

  // Distinct conductors: the k smallest counter-hash keys. Scenario index is
  // folded into every key, so different scenarios draw different subsets
  // (collisions across scenarios are possible and harmless — two identical
  // single-break scenarios are still valid samples of the damage space).
  std::vector<std::size_t> order(base_.size());
  std::iota(order.begin(), order.end(), 0U);
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   order.end(), [&](std::size_t a, std::size_t b) {
                     return damage_unit(seed(), index, kPurposeSelect, a) <
                            damage_unit(seed(), index, kPurposeSelect, b);
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());

  std::vector<ConductorBreak> result;
  result.reserve(k);
  for (const std::size_t conductor : order) {
    const bool removed =
        damage_unit(seed(), index, kPurposeMode, conductor) < options_.removal_probability;
    result.push_back({conductor, removed});
  }
  return result;
}

std::vector<geom::Conductor> DamageEnsemble::scenario_conductors(std::size_t index) const {
  const std::vector<ConductorBreak> damage = breaks(index);
  std::vector<geom::Conductor> conductors;
  conductors.reserve(base_.size() + damage.size());
  std::size_t next_break = 0;
  for (std::size_t c = 0; c < base_.size(); ++c) {
    if (next_break < damage.size() && damage[next_break].conductor == c) {
      const ConductorBreak& broken = damage[next_break];
      ++next_break;
      if (broken.removed) continue;
      // Centered gap: keep the two stubs so the corroded joint still
      // dissipates through the remaining metal.
      const geom::Conductor& bar = base_[c];
      const double lo = 0.5 * (1.0 - options_.gap_fraction);
      const double hi = 0.5 * (1.0 + options_.gap_fraction);
      const geom::Vec3 d = bar.b - bar.a;
      conductors.push_back({bar.a, bar.a + lo * d, bar.radius});
      conductors.push_back({bar.a + hi * d, bar.b, bar.radius});
      continue;
    }
    conductors.push_back(base_[c]);
  }
  return conductors;
}

geom::Mesh DamageEnsemble::scenario_mesh(std::size_t index) const {
  const std::vector<geom::Conductor> split =
      bem::split_at_interfaces(scenario_conductors(index), soil_);
  return geom::Mesh::build(split, options_.mesh);
}

bem::BemModel DamageEnsemble::scenario_model(std::size_t index) const {
  return bem::BemModel(scenario_mesh(index), soil_);
}

}  // namespace ebem::campaign

#include "src/campaign/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/error.hpp"
#include "src/common/hash.hpp"

namespace ebem::campaign {

namespace {

/// Counter hash -> uniform in (0, 1): the top 53 bits of the mixed word,
/// centered in the half-open lattice so 0 and 1 are unreachable.
[[nodiscard]] double hash_to_unit(std::uint64_t word) {
  return (static_cast<double>(word >> 11) + 0.5) * 0x1.0p-53;
}

}  // namespace

double inverse_normal_cdf(double p) {
  EBEM_EXPECT(p > 0.0 && p < 1.0, "inverse_normal_cdf needs p in (0, 1)");

  // Acklam's rational approximation: three branches (lower tail, central,
  // upper tail), |relative error| < 1.15e-9 on its own.
  static constexpr double kA[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                  -2.759285104469687e+02, 1.383577518672690e+02,
                                  -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double kB[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                  -1.556989798598866e+02, 6.680131188771972e+01,
                                  -1.328068155288572e+01};
  static constexpr double kC[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                  -2.400758277161838e+00, -2.549732539343734e+00,
                                  4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double kD[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                  2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;

  double x = 0.0;
  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q + kC[5]) /
        ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  } else if (p <= 1.0 - kLow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((kA[0] * r + kA[1]) * r + kA[2]) * r + kA[3]) * r + kA[4]) * r + kA[5]) * q /
        (((((kB[0] * r + kB[1]) * r + kB[2]) * r + kB[3]) * r + kB[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q + kC[5]) /
        ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  }

  // One Halley refinement against the exact CDF (erfc-based complement keeps
  // the tails accurate): pushes the relative error below 1e-13.
  constexpr double kSqrtHalf = 0.70710678118654752440;
  constexpr double kSqrtTwoPi = 2.50662827463100050242;
  const double e = 0.5 * std::erfc(-x * kSqrtHalf) - p;
  const double u = e * kSqrtTwoPi * std::exp(0.5 * x * x);
  return x - u / (1.0 + 0.5 * x * u);
}

Sampler::Sampler(std::uint64_t seed, std::size_t dimensions, std::size_t count)
    : seed_(seed), count_(count) {
  EBEM_EXPECT(count > 0, "Sampler needs a positive sample count");
  EBEM_EXPECT(dimensions > 0, "Sampler needs at least one dimension");
  permutations_.resize(dimensions);
  std::vector<std::uint64_t> keys(count);
  for (std::size_t d = 0; d < dimensions; ++d) {
    // Seeded stratum permutation: sort sample indices by a counter hash.
    // Ties are impossible in practice (64-bit keys) and broken by index if
    // they ever happen, so the permutation is fully deterministic.
    std::vector<std::uint32_t>& perm = permutations_[d];
    perm.resize(count);
    std::iota(perm.begin(), perm.end(), 0U);
    for (std::size_t i = 0; i < count; ++i) {
      keys[i] = splitmix64(hash_combine(hash_combine(seed, 0x5b7a3d21ULL + d), i));
    }
    std::stable_sort(perm.begin(), perm.end(),
                     [&](std::uint32_t a, std::uint32_t b) { return keys[a] < keys[b]; });
  }
}

double Sampler::uniform01(std::size_t sample, std::size_t dimension) const {
  EBEM_EXPECT(sample < count_, "sample index out of range");
  EBEM_EXPECT(dimension < permutations_.size(), "dimension out of range");
  const double stratum = static_cast<double>(permutations_[dimension][sample]);
  const double jitter = hash_to_unit(
      splitmix64(hash_combine(hash_combine(seed_, 0x9c11f0adULL + dimension), sample)));
  return (stratum + jitter) / static_cast<double>(count_);
}

double Sampler::normal(std::size_t sample, std::size_t dimension) const {
  return inverse_normal_cdf(uniform01(sample, dimension));
}

}  // namespace ebem::campaign

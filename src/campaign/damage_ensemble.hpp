// campaign::DamageEnsemble — conductor-damage ablations of one grid design.
//
// Grounding grids degrade in service: joints corrode open, conductors are
// cut by excavation, rods detach. The safety question is then "which single
// (or double) failures push the design out of tolerance?" — a batch of
// nearby models derived from one base design, exactly the workload the
// engine's pipelining scheduler and warm congruence cache are built for
// (the soil is fixed, so every scenario shares the physics fingerprint and
// the undamaged majority of each grid replays cached elemental blocks).
//
// Each scenario breaks a seeded, deterministic selection of conductors in
// one of two ways: *removal* (the conductor disappears — a detached rod or
// stolen bar) or *segmentation* (a centered gap opens — a corroded joint:
// the stubs remain and still dissipate current). The damaged conductor set
// is split at soil interfaces and re-meshed with the same geom::MeshOptions
// every time, so scenario meshes are valid, deterministic and comparable
// to the base design's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/bem/element.hpp"
#include "src/campaign/sampler.hpp"
#include "src/geom/conductor.hpp"
#include "src/geom/mesh.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::campaign {

/// One broken conductor within a scenario.
struct ConductorBreak {
  std::size_t conductor = 0;  ///< index into the base conductor set
  bool removed = false;       ///< true: removal; false: centered-gap segmentation
};

struct DamageOptions {
  /// Broken conductors per scenario, sampled uniformly in
  /// [min_breaks, max_breaks].
  std::size_t min_breaks = 1;
  std::size_t max_breaks = 2;
  /// Probability that a break removes the conductor entirely; otherwise it
  /// opens a centered gap (segmentation).
  double removal_probability = 0.5;
  /// Gap length as a fraction of the conductor length for segmented breaks
  /// (must leave two stubs: 0 < gap_fraction < 1).
  double gap_fraction = 0.25;
  /// Meshing of every scenario (same options for all, so element sizes are
  /// comparable across the ensemble and with the undamaged base design).
  geom::MeshOptions mesh;

  /// Throws ebem::InvalidArgument on contradictions (empty break range,
  /// max_breaks >= conductor count, probabilities/fractions out of range).
  void validate(std::size_t conductor_count) const;
};

/// A fixed-size, seeded ensemble of damaged variants of one base design.
/// Everything is a pure function of (base, options, count, seed, index).
class DamageEnsemble {
 public:
  DamageEnsemble(std::vector<geom::Conductor> base, soil::LayeredSoil soil,
                 DamageOptions options, std::size_t count, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const { return sampler_.count(); }
  [[nodiscard]] std::uint64_t seed() const { return sampler_.seed(); }
  [[nodiscard]] const std::vector<geom::Conductor>& base() const { return base_; }
  [[nodiscard]] const soil::LayeredSoil& soil() const { return soil_; }
  [[nodiscard]] const DamageOptions& options() const { return options_; }

  /// The i-th scenario's break list (deterministic; conductor indices are
  /// strictly increasing and distinct).
  [[nodiscard]] std::vector<ConductorBreak> breaks(std::size_t index) const;

  /// The damaged conductor set of scenario i (removals dropped, segmented
  /// conductors replaced by their two stubs).
  [[nodiscard]] std::vector<geom::Conductor> scenario_conductors(std::size_t index) const;

  /// Scenario i split at soil interfaces and meshed with options().mesh.
  [[nodiscard]] geom::Mesh scenario_mesh(std::size_t index) const;

  /// The ready-to-submit model of scenario i.
  [[nodiscard]] bem::BemModel scenario_model(std::size_t index) const;

 private:
  std::vector<geom::Conductor> base_;
  soil::LayeredSoil soil_;
  DamageOptions options_;
  Sampler sampler_;
};

}  // namespace ebem::campaign

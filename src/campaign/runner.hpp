// campaign::Runner — one Study, a batch of scenarios, a distributional
// answer.
//
// The paper's CAD loop asks "is this design safe?" against one fitted soil;
// a campaign asks the same question against an ensemble — stochastic soils
// around the Wenner fit (SoilEnsemble) or damage ablations of the design
// (DamageEnsemble) — and reduces the batch to percentiles of equivalent
// resistance, GPR and touch/step safety margins.
//
// Execution shape: scenarios are submitted through engine::Study::submit
// with a bounded in-flight window (backpressure — at most
// CampaignOptions::window runs hold assembled matrices at once, so a
// 10k-scenario campaign cannot exhaust memory by queueing), futures are
// harvested as they complete (completion order, so a slow scenario never
// pins its successors' resources), and observations are committed into the
// streaming summaries strictly in scenario-index order. That last step is
// what the determinism guarantee rests on: for a fixed seed, the reported
// percentiles are bit-identical regardless of pipeline width or how
// completions interleave.
//
// Batching note (fingerprint-guard cost): every soil scenario changes the
// engine's physics fingerprint, so each run drops the warm congruence cache
// behind a drain of in-flight assemblies — soil sweeps are the guard's
// worst case and their per-run cost is visible in the campaign report's
// "Warm cache physics drops" / "Assembly gate wait seconds" counters.
// Damage sweeps keep the physics fixed and replay the cache; a mixed batch
// should therefore be grouped by physics (all soils of scenario A, then all
// soils of scenario B is *wrong*; all of one soil first is right) — which
// the one-ensemble-per-run() API enforces naturally.
#pragma once

#include <cstddef>
#include <optional>

#include "src/bem/analysis.hpp"
#include "src/campaign/damage_ensemble.hpp"
#include "src/campaign/soil_ensemble.hpp"
#include "src/campaign/summary.hpp"
#include "src/common/phase_report.hpp"
#include "src/engine/study.hpp"
#include "src/post/safety.hpp"

namespace ebem::campaign {

/// One scenario batch: anything that can produce its i-th model on demand.
/// Implementations must be pure (same index, same model) — the runner
/// re-derives a scenario's model for post-processing after the submitted
/// copy is consumed.
class ScenarioSource {
 public:
  virtual ~ScenarioSource() = default;

  [[nodiscard]] virtual std::size_t size() const = 0;
  /// The i-th scenario, ready to submit.
  [[nodiscard]] virtual bem::BemModel model(std::size_t index) const = 0;
  /// Native soil resistivity at the surface for scenario i [Ohm m] — feeds
  /// the scenario's tolerable-limit criteria (IEEE Std 80 limits depend on
  /// the soil under one's feet, which a soil sweep varies per scenario).
  [[nodiscard]] virtual double surface_soil_resistivity(std::size_t index) const = 0;
};

/// Soil sweep: one conductor design re-analyzed under every sampled soil.
/// The design is split at each scenario's own layer interface and re-meshed
/// (H moves between scenarios, and elements must not straddle the
/// interface). Worst case for the warm cache — the physics fingerprint
/// changes every scenario.
class SoilSweep final : public ScenarioSource {
 public:
  SoilSweep(std::vector<geom::Conductor> conductors, geom::MeshOptions mesh,
            SoilEnsemble ensemble);

  [[nodiscard]] std::size_t size() const override { return ensemble_.size(); }
  [[nodiscard]] bem::BemModel model(std::size_t index) const override;
  [[nodiscard]] double surface_soil_resistivity(std::size_t index) const override;
  [[nodiscard]] const SoilEnsemble& ensemble() const { return ensemble_; }

 private:
  std::vector<geom::Conductor> conductors_;
  geom::MeshOptions mesh_;
  SoilEnsemble ensemble_;
};

/// Damage sweep: one soil, many damaged variants of the design. The physics
/// fingerprint is fixed across the batch, so scenarios share the warm
/// congruence cache (the undamaged majority of each grid replays cached
/// blocks).
class DamageSweep final : public ScenarioSource {
 public:
  explicit DamageSweep(DamageEnsemble ensemble) : ensemble_(std::move(ensemble)) {}

  [[nodiscard]] std::size_t size() const override { return ensemble_.size(); }
  [[nodiscard]] bem::BemModel model(std::size_t index) const override {
    return ensemble_.scenario_model(index);
  }
  [[nodiscard]] double surface_soil_resistivity(std::size_t) const override {
    return ensemble_.soil().resistivity(0);
  }
  [[nodiscard]] const DamageEnsemble& ensemble() const { return ensemble_; }

 private:
  DamageEnsemble ensemble_;
};

/// Where and how to assess touch/step safety for every committed scenario.
struct SafetyPatch {
  double x0 = 0.0, x1 = 0.0;  ///< sampled surface rectangle [m]
  double y0 = 0.0, y1 = 0.0;
  std::size_t nx = 6, ny = 6;  ///< sample counts per axis
  /// Tolerable-limit inputs. criteria.soil_resistivity is overwritten per
  /// scenario with ScenarioSource::surface_soil_resistivity.
  post::SafetyCriteria criteria;
  post::PotentialOptions potential;
};

/// Early termination once a watched percentile is known tightly enough.
struct CampaignEarlyStop {
  double quantile = 0.95;  ///< watched percentile of equivalent resistance
  /// Stop when the order-statistic confidence half-width of the watched
  /// quantile drops below this fraction of the quantile itself. 0 disables
  /// early stopping (the default: run the whole ensemble).
  double relative_half_width = 0.0;
  std::size_t min_scenarios = 32;  ///< never stop before this many commits
  double z = 1.96;                 ///< confidence level of the bracket
};

struct CampaignOptions {
  /// Maximum in-flight submissions (backpressure bound). Small multiples of
  /// the engine's pipeline_width keep the pipeline fed without holding more
  /// assembled matrices than the window.
  std::size_t window = 8;
  /// Fault current I_f [A]. When > 0, each scenario's GPR is I_f x R_eq_i
  /// (the physical coupling: the same fault through a different earth gives
  /// a different rise) and sigma is rescaled accordingly before safety
  /// evaluation. When 0, the study's fixed options().gpr is used for every
  /// scenario.
  double fault_current = 0.0;
  QuantileMode quantiles = QuantileMode::kExact;
  CampaignEarlyStop early_stop;
  /// Touch/step assessment per scenario; nullopt skips safety entirely
  /// (resistance/GPR statistics only).
  std::optional<SafetyPatch> safety;

  /// Throws ebem::InvalidArgument on contradictions (zero window, early
  /// stop without exact quantiles, degenerate safety patch, ...).
  void validate() const;
};

struct CampaignResult {
  std::size_t scenarios = 0;  ///< ensemble size
  std::size_t completed = 0;  ///< scenarios committed into the statistics
  bool stopped_early = false;

  MetricSummary resistance;    ///< equivalent resistance R_eq [Ohm]
  MetricSummary gpr;           ///< ground potential rise [V]
  MetricSummary touch_margin;  ///< tolerable - actual max touch voltage [V]
  MetricSummary step_margin;   ///< tolerable - actual max step voltage [V]
  std::size_t touch_violations = 0;  ///< committed scenarios with margin < 0
  std::size_t step_violations = 0;

  /// Congruence-cache rollup: the sum of committed runs' exact deltas.
  bem::CongruenceCacheStats cache;
  /// Phase timings + counters merged from committed runs' PhaseReports
  /// (includes the cache counters and the fingerprint-guard cost counters
  /// "Warm cache physics drops" / "Assembly gate wait seconds").
  PhaseReport phases;

  std::size_t peak_in_flight = 0;  ///< observed maximum; <= options.window
  double wall_seconds = 0.0;
};

/// Drives one ScenarioSource through a Study. Stateless between run() calls;
/// the study (and its engine) are borrowed and must outlive the runner.
class Runner {
 public:
  /// Validates the options (throws ebem::InvalidArgument).
  explicit Runner(engine::Study& study, CampaignOptions options = {});

  [[nodiscard]] const CampaignOptions& options() const { return options_; }

  /// Run the whole ensemble (or until early stop) and reduce. Throws on an
  /// empty source; rethrows the first failed scenario's exception.
  [[nodiscard]] CampaignResult run(const ScenarioSource& source);

 private:
  engine::Study* study_;
  CampaignOptions options_;
};

}  // namespace ebem::campaign

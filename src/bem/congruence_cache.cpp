#include "src/bem/congruence_cache.hpp"

#include "src/common/error.hpp"

namespace ebem::bem {

CongruenceCache::CongruenceCache(double quantum, std::size_t max_entries)
    : quantum_(quantum), max_entries_(max_entries) {
  EBEM_EXPECT(quantum > 0.0, "congruence quantum must be positive");
}

bool CongruenceCache::lookup(const PairSignature& signature, LocalMatrix& block) const {
  const Shard& shard = shard_of(signature);
  {
    const std::scoped_lock lock(shard.mutex);
    const auto it = shard.map.find(signature);
    if (it != shard.map.end()) {
      block = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void CongruenceCache::insert(const PairSignature& signature, const LocalMatrix& block) {
  if (entries_.load(std::memory_order_relaxed) >= max_entries_) return;
  Shard& shard = shard_of(signature);
  const std::scoped_lock lock(shard.mutex);
  if (shard.map.try_emplace(signature, block).second) {
    entries_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool CongruenceCache::lookup(const CanonicalPairSignature& signature, LocalMatrix& block) const {
  if (!lookup(signature.signature, block)) return false;
  if (signature.transposed) block = transposed(block);
  return true;
}

void CongruenceCache::insert(const CanonicalPairSignature& signature, const LocalMatrix& block) {
  insert(signature.signature, signature.transposed ? transposed(block) : block);
}

CongruenceCacheStats CongruenceCache::stats() const {
  CongruenceCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.entries = entries_.load(std::memory_order_relaxed);
  return stats;
}

void CongruenceCache::drop_entries() {
  for (Shard& shard : shards_) {
    const std::scoped_lock lock(shard.mutex);
    shard.map.clear();
  }
  entries_.store(0, std::memory_order_relaxed);
}

void CongruenceCache::clear() {
  drop_entries();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace ebem::bem

// Global Galerkin system generation — the paper's dominant cost (Table 6.1)
// and the stage it parallelizes (§6.2).
//
// The element-pair loop is the triangle beta = 0..M-1, alpha = beta..M-1
// ("a triangle of M columns, of which the first one has M rows and the last
// one has 1 row"). Execution modes:
//   * sequential: compute each elemental matrix and assemble it immediately;
//   * parallel outer loop: columns are distributed across threads under an
//     OpenMP-style schedule (coarse granularity; the paper's pick);
//   * parallel inner loop: columns run sequentially, the rows of each column
//     are distributed (the lower-granularity alternative of Fig. 6.1).
//
// Parallel modes use a *fused streaming* scheme: every worker scatters each
// elemental matrix into the global packed symmetric matrix as soon as it is
// computed, synchronized by an array of row-striped locks. Because the
// element-pair integration dominates the scatter by orders of magnitude, the
// stripe locks are essentially uncontended; peak memory stays at the packed
// O(N^2/2) of the result matrix itself. (The seed's two-phase scheme instead
// materialized all M(M+1)/2 elemental blocks before a serial scatter pass —
// O(M^2) extra memory and a serial Amdahl term.)
#pragma once

#include <cstddef>
#include <vector>

#include "src/bem/congruence_cache.hpp"
#include "src/bem/integrator.hpp"
#include "src/la/sym_matrix.hpp"
#include "src/parallel/schedule.hpp"
#include "src/soil/hankel_kernel.hpp"

namespace ebem::par {
class ThreadPool;
}  // namespace ebem::par

namespace ebem::bem {

enum class ParallelLoop {
  kOuter,  ///< distribute the M columns (coarse granularity; paper's pick)
  kInner,  ///< distribute the rows within each column (fine granularity)
};

enum class Backend {
  kThreadPool,  ///< portable std::thread pool with OpenMP-semantics schedules
  kOpenMp,      ///< real OpenMP runtime directives (the paper's mode);
                ///< sequential fallback when built without OpenMP
};

struct AssemblyOptions {
  IntegratorOptions integrator;
  soil::SeriesOptions series;
  /// Spectral-kernel controls, used only for 3-and-more-layer soils (where
  /// assembly automatically falls back to the Hankel kernel with inner
  /// Gauss integration). The loose default reflects that quadrature error
  /// dominates the spectral tolerance there.
  soil::HankelOptions hankel{.tolerance = 1e-7};
  std::size_t num_threads = 1;
  par::Schedule schedule = par::Schedule::dynamic(1);
  ParallelLoop loop = ParallelLoop::kOuter;
  Backend backend = Backend::kThreadPool;
  /// Record the wall-clock cost of each outer column (feeds the schedule
  /// simulator used by the Fig. 6.1 / Table 6.2 / Table 6.3 benches).
  bool measure_column_costs = false;
  /// Optional externally owned worker pool for Backend::kThreadPool; when
  /// set its thread count takes precedence over num_threads, and repeated
  /// assemblies reuse the same workers instead of spawning fresh threads.
  par::ThreadPool* pool = nullptr;
  /// Integrate each distinct pair geometry once and replay the cached block
  /// for congruent copies (translation/rotation/reflection in the horizontal
  /// plane; see pair_signature.hpp). Uniform rectangular grids collapse to
  /// a few hundred classes; fully graded grids degrade gracefully to ~0%
  /// hits plus the signature-hashing overhead.
  bool use_congruence_cache = false;
  /// Signature quantization step [m]; keep at (or below) the parity
  /// tolerance expected between cache-on and cache-off assembly.
  double congruence_quantum = kDefaultCongruenceQuantum;
  /// Optional externally owned cache, reused across repeated assemblies
  /// (implies use_congruence_cache; its quantum takes precedence). Only
  /// valid while soil model and integrator/series options are unchanged.
  CongruenceCache* congruence_cache = nullptr;
};

struct AssemblyResult {
  la::SymMatrix matrix;         ///< R, dense symmetric positive definite
  std::vector<double> rhs;      ///< nu_j = integral of w_j (paper eq. 4.6)
  std::vector<double> column_costs;  ///< seconds per outer column, if measured
  std::size_t element_pairs = 0;
  /// Congruence-cache counters for this run (zeros when disabled; cumulative
  /// over the cache lifetime when an external cache was supplied).
  CongruenceCacheStats cache_stats;
};

/// Generate the Galerkin system for the model under the given options.
[[nodiscard]] AssemblyResult assemble(const BemModel& model, const AssemblyOptions& options);

}  // namespace ebem::bem

// Global Galerkin system generation — the paper's dominant cost (Table 6.1)
// and the stage it parallelizes (§6.2).
//
// The element-pair loop is the triangle beta = 0..M-1, alpha = beta..M-1
// ("a triangle of M columns, of which the first one has M rows and the last
// one has 1 row"). Execution modes:
//   * sequential: compute each elemental matrix and assemble it immediately;
//   * parallel outer loop: columns are distributed across threads under an
//     OpenMP-style schedule (coarse granularity; the paper's pick);
//   * parallel inner loop: columns run sequentially, the rows of each column
//     are distributed (the lower-granularity alternative of Fig. 6.1).
//
// Parallel modes use a *fused streaming* scheme: every worker scatters each
// elemental matrix into the global tiled symmetric matrix as soon as it is
// computed, synchronized by per-tile locks — an elemental 2x2 block maps to
// at most four tiles of the la::TileStore backing the matrix, so the scheme
// works unchanged whether the store is the in-memory arena or the
// out-of-core spill pager. Because the element-pair integration dominates
// the scatter by orders of magnitude, the tile locks are essentially
// uncontended; peak memory stays at the lower-triangle tiles of the result
// matrix itself — or at the pager's residency budget when one is set. (The
// seed's two-phase scheme instead materialized all M(M+1)/2 elemental
// blocks before a serial scatter pass — O(M^2) extra memory and a serial
// Amdahl term.)
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/bem/clustering.hpp"
#include "src/bem/congruence_cache.hpp"
#include "src/bem/far_field.hpp"
#include "src/bem/integrator.hpp"
#include "src/la/permutation.hpp"
#include "src/la/sym_matrix.hpp"
#include "src/parallel/schedule.hpp"
#include "src/soil/hankel_kernel.hpp"

namespace ebem::par {
class ThreadPool;
}  // namespace ebem::par

namespace ebem::bem {

enum class ParallelLoop {
  kOuter,  ///< distribute the M columns (coarse granularity; paper's pick)
  kInner,  ///< distribute the rows within each column (fine granularity)
};

enum class Backend {
  kThreadPool,  ///< portable std::thread pool with OpenMP-semantics schedules
  kOpenMp,      ///< real OpenMP runtime directives (the paper's mode);
                ///< sequential fallback when built without OpenMP
};

/// Physics and discretization of the Galerkin system — what is integrated.
/// How the work is executed (threads, schedules, caches) lives in
/// AssemblyExecution; a single engine::ExecutionConfig resolves to one and
/// is the recommended way to set it up.
struct AssemblyOptions {
  IntegratorOptions integrator;
  soil::SeriesOptions series;
  /// Spectral-kernel controls, used only for 3-and-more-layer soils (where
  /// assembly automatically falls back to the Hankel kernel with inner
  /// Gauss integration). The loose default reflects that quadrature error
  /// dominates the spectral tolerance there.
  soil::HankelOptions hankel{.tolerance = 1e-7};

  friend bool operator==(const AssemblyOptions&, const AssemblyOptions&) = default;
};

/// Resolved execution plumbing for one assembly: worker resources and the
/// congruence cache are *referenced*, not owned, so repeated assemblies can
/// share warm threads and a warm cache (see engine::Engine, which owns both
/// and hands out a consistent AssemblyExecution). The default is the serial
/// cache-less reference path.
struct AssemblyExecution {
  std::size_t num_threads = 1;
  /// Externally owned worker pool for Backend::kThreadPool; when set its
  /// thread count takes precedence over num_threads.
  par::ThreadPool* pool = nullptr;
  par::Schedule schedule = par::Schedule::dynamic(1);
  ParallelLoop loop = ParallelLoop::kOuter;
  Backend backend = Backend::kThreadPool;
  /// Storage policy of the assembled matrix (tile size, and the spill
  /// pager's residency budget for out-of-core assembly). The default is the
  /// fully resident in-memory tile arena.
  la::StorageConfig storage;
  /// Record the wall-clock cost of each outer column (feeds the schedule
  /// simulator used by the Fig. 6.1 / Table 6.2 / Table 6.3 benches).
  bool measure_column_costs = false;
  /// Congruence cache: non-null integrates each distinct pair geometry once
  /// and replays the 2x2 block for congruent copies (see pair_signature.hpp).
  /// Only valid while soil model and integrator/series options are
  /// unchanged; stats on the cache are cumulative over its lifetime.
  CongruenceCache* cache = nullptr;
};

struct AssemblyResult {
  /// R, dense symmetric positive definite. With `ordering` set the rows and
  /// columns are in the permutation's *internal* (storage) order; without
  /// it they follow the model's DoF numbering as always.
  la::SymMatrix matrix;
  /// nu_j = integral of w_j (paper eq. 4.6) — always in *external* (model)
  /// order; the solve paths gather it through `ordering` when needed.
  std::vector<double> rhs;
  std::vector<double> column_costs;  ///< seconds per outer column, if measured
  std::size_t element_pairs = 0;
  /// Congruence-cache counters of *this assembly alone* (zeros when the
  /// cache is disabled): hits/misses are tallied per looked-up pair inside
  /// the run, so they stay exact even when several pipelined runs share one
  /// warm cache concurrently — the shared cache's own stats() are
  /// lifetime-cumulative across every run that ever touched it. `entries`
  /// is the shared cache's occupancy right after this assembly.
  CongruenceCacheStats cache_stats;
  /// Pager counters of the matrix's tile store over this assembly (zeros
  /// except resident-byte gauges for the in-memory backend).
  la::TileStoreStats matrix_tiles;
  /// Low-rank far-field outcome when storage compression is enabled (all
  /// zeros otherwise): the stored-vs-dense byte breakdown of the matrix and
  /// the near/sampled/skipped split of the element-pair bill.
  la::CompressionStats compression;
  FarFieldStats far_field;
  /// The geometric DoF permutation the matrix was stored under, when
  /// storage.compression.ordering == kGeometric (null otherwise). Shared so
  /// downstream handles (FactoredSystem) can outlive this result. Pass it
  /// as SolveExecution::ordering to solve against this matrix.
  std::shared_ptr<const la::Permutation> ordering;
  /// Cluster-tree summary of the ordering (zeros when ordering is null).
  OrderingStats ordering_stats;
};

/// Generate the Galerkin system for the model under the given options and
/// execution plan (default: sequential, no cache).
[[nodiscard]] AssemblyResult assemble(const BemModel& model, const AssemblyOptions& options = {},
                                      const AssemblyExecution& execution = {});

}  // namespace ebem::bem

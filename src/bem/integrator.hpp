// Elemental Galerkin coefficients R^{beta alpha} and potential influence
// coefficients V_i(x) — paper eqs. (4.3) and (4.5).
//
// Two inner-integration paths:
//  * analytic (default): closed-form segment integrals per image term — the
//    paper's "highly efficient analytical integration techniques"; needs an
//    image-series kernel, i.e. a 1- or 2-layer soil;
//  * Gauss: generic quadrature of any PointKernel, which is what enables
//    3-and-more-layer soils (at the much higher cost the paper warns about)
//    and serves as the accuracy/cost ablation baseline.
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "src/bem/element.hpp"
#include "src/soil/image_series.hpp"
#include "src/soil/point_kernel.hpp"

namespace ebem::bem {

class CongruenceCache;

enum class InnerIntegration {
  kAnalytic,    ///< closed-form inner integral (image kernels only)
  kGauss,       ///< plain inner Gauss quadrature (ablation baseline; poor on
                ///< self/near elements where the kernel is near-singular)
  kSubtracted,  ///< singularity subtraction: the local q/r part (with
                ///< q = 1/(2 pi (gamma_b + gamma_c)), exact within a layer
                ///< and across an interface) is integrated in closed form
                ///< and only the smooth remainder is Gauss-quadratured —
                ///< works with any kernel; the multi-layer production path
};

/// Which segment-potential evaluator the analytic path runs. kBatched is the
/// production SIMD path (structure-of-arrays, fused image sweep);
/// kScalarReference is the original per-term, per-point asinh formulation,
/// kept as an independent cross-check and as the bench_kernels "scalar"
/// baseline. The two agree to <= 1e-12 relative at the assembly level.
enum class SegmentEval {
  kBatched,
  kScalarReference,
};

struct IntegratorOptions {
  BasisKind basis = BasisKind::kLinear;
  InnerIntegration inner = InnerIntegration::kAnalytic;
  std::size_t outer_gauss_points = 8;
  std::size_t inner_gauss_points = 8;  ///< used only by InnerIntegration::kGauss
  SegmentEval segment_eval = SegmentEval::kBatched;
  /// Mixed-precision experiment, off at 0 (the default). When positive,
  /// image terms whose |weight| falls below this fraction of the pair's
  /// largest |weight| are evaluated in single precision and folded into the
  /// double accumulators (see ImageSegmentSweep::tail_begin). At 1e-5 the
  /// assembly-level deviation from the all-double path stays below ~1e-9
  /// relative (the documented bound, asserted by tests) — measurably outside
  /// the 1e-12 parity contract, which is why it is an opt-in experiment.
  double mixed_tail_threshold = 0.0;

  friend bool operator==(const IntegratorOptions&, const IntegratorOptions&) = default;
};

/// Up-to-2x2 elemental matrix block (local test DoF x local trial DoF).
struct LocalMatrix {
  std::array<std::array<double, 2>, 2> value{};
};

/// Role-swapped block: by Galerkin reciprocity the transpose of R^{beta
/// alpha} is the block of the reversed ordered pair (see
/// kTransposeSeparationRatio for the numerical caveat).
[[nodiscard]] inline LocalMatrix transposed(const LocalMatrix& block) {
  LocalMatrix t;
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t q = 0; q < 2; ++q) t.value[p][q] = block.value[q][p];
  }
  return t;
}

/// Evaluates elemental coefficients against a fixed soil kernel.
class Integrator {
 public:
  /// The analytic path requires `kernel` to be an ImageKernel; the Gauss
  /// path accepts any PointKernel (throws otherwise at construction).
  Integrator(const soil::PointKernel& kernel, const IntegratorOptions& options);

  /// Galerkin block R^{beta alpha}: field (test) element beta against source
  /// (trial) element alpha, all image terms summed (paper eq. 4.5).
  [[nodiscard]] LocalMatrix element_pair(const BemElement& field,
                                         const BemElement& source) const;

  /// Cache-aware variant: a null `cache` is the plain computation; otherwise
  /// the pair's congruence signature is looked up first and the integration
  /// runs only on a miss (the result is then stored for congruent pairs).
  /// `was_hit`, when non-null, receives whether the block was replayed — the
  /// assembly's per-run hit/miss tally, which stays exact even when several
  /// concurrent runs share the cache (the cache's own counters are
  /// lifetime-cumulative across all of them).
  [[nodiscard]] LocalMatrix element_pair(const BemElement& field, const BemElement& source,
                                         CongruenceCache* cache,
                                         bool* was_hit = nullptr) const;

  /// Batched far-field entry point: Galerkin blocks of one fixed source
  /// (trial) element against many field (test) elements, out[k] =
  /// R^{fields[k], source}. Numerically identical to calling element_pair
  /// per field; the point is the access pattern — with the source fixed,
  /// the per-thread image-frame workspace (built once per source and field
  /// layer) is reused across every field element, which is what makes ACA
  /// row/column sampling cost O(fields) segment evaluations instead of
  /// O(fields x image terms) frame constructions.
  void element_pair_batch(const BemElement& source,
                          std::span<const BemElement* const> fields, LocalMatrix* out) const;

  /// Cache-aware batched entry: each field's congruence signature is looked
  /// up before any sampling, so ACA row/column samples over congruent
  /// geometry replay stored blocks instead of re-integrating — on ordered
  /// grids most of the sampling bill. Misses are integrated with the shared
  /// per-source workspace and inserted for the next congruent pair.
  /// `replayed`, when non-null, is incremented by the number of fields
  /// served from the cache.
  void element_pair_batch(const BemElement& source,
                          std::span<const BemElement* const> fields, LocalMatrix* out,
                          CongruenceCache* cache, std::size_t* replayed = nullptr) const;

  /// Potential influence at point x of source element alpha's local DoFs
  /// (paper eq. 4.3): V(x) = sum_i sigma_i * coefficient_i.
  [[nodiscard]] std::array<double, 2> potential_influence(geom::Vec3 x,
                                                          const BemElement& source) const;

  [[nodiscard]] const IntegratorOptions& options() const { return options_; }
  [[nodiscard]] const soil::PointKernel& kernel() const { return kernel_; }

 private:
  /// Inner integrals of each local shape function against the kernel for
  /// the given field point, prefactor included.
  [[nodiscard]] std::array<double, 2> inner_integrals(geom::Vec3 field_point,
                                                      const BemElement& source,
                                                      std::size_t field_layer) const;

  /// Batched analytic path of element_pair: the mirrored image segments of
  /// `source` are set up once per (source, layer-pair) and every segment is
  /// evaluated against all outer Gauss points of `field` in one pass,
  /// instead of re-deriving each image for every outer point.
  [[nodiscard]] LocalMatrix element_pair_analytic(const BemElement& field,
                                                  const BemElement& source) const;

  const soil::PointKernel& kernel_;
  const soil::ImageKernel* image_kernel_;  ///< non-null when kernel_ is image-based
  IntegratorOptions options_;
};

}  // namespace ebem::bem

// Closed-form single-layer potential integrals over straight segments.
//
// These are the "highly efficient analytical integration techniques" of the
// paper (§4.2, ref [4]): for a field point P and a straight source segment,
// the inner integrals
//   I0 = Integral_0^L            dt / r(P, xi(t))
//   I1 = Integral_0^L        t * dt / r(P, xi(t))
// have closed forms once the kernel is regularized with the thin-wire
// radius, r = sqrt(|P - xi|^2 + a^2). Linear shape functions are linear
// combinations of I0 and I1, so every elemental coefficient of eq. (4.5)
// reduces to an outer quadrature over these closed forms — term by image
// term, because the image of a straight segment is a straight segment.
//
// The batched integrator evaluates one segment against many field points
// (all outer Gauss points of an element pair) in structure-of-arrays form,
// with a branch-free kernel that vectorizes (see src/common/simd.hpp):
// with t0 the axis coordinate of the perpendicular foot, u1 = L - t0,
// r0/r1 the distances to the segment ends and s = r0 + r1,
//   I0 = log((r1 + u1)/(r0 - t0)) = log1p(L * (A + C) / (s * A))
//   I1 = L * (L - 2 t0) / s + t0 * I0
// where A = r0 - t0 and C = r1 + u1 are each computed cancellation-free by
// switching to perp2 / (r + |.|) on the branch where the direct form
// cancels. The scalar segment_potentials is a batch of one of the same
// kernel, so batched and scalar results are identical by construction; the
// original asinh formulation is kept as segment_potentials_reference for
// cross-checks and as the benchmark baseline.
//
// The hottest call shape of all — every mirrored image of one source
// against every outer Gauss point — gets a dedicated fused entry: all
// images of a straight segment share its horizontal geometry (same x/y
// start, same horizontal axis, same length and radius), so a sweep is one
// shared base plus three small per-term arrays, and the per-point
// horizontal products are hoisted out of the term loop entirely.
#pragma once

#include <cstddef>
#include <vector>

#include "src/geom/vec3.hpp"

namespace ebem::bem {

/// Result of the analytic inner integration against a source segment.
struct SegmentPotentials {
  double i0 = 0.0;  ///< integral of 1/r
  double i1 = 0.0;  ///< integral of t/r (t = arc length from segment start)
};

/// Field-point-independent part of the segment integrals: unit axis, length
/// and squared regularization radius, computed once per (image) segment.
struct SegmentFrame {
  geom::Vec3 a;         ///< segment start
  geom::Vec3 u;         ///< unit axis (b - a) / |b - a|
  double length = 0.0;  ///< |b - a|
  double radius2 = 0.0; ///< thin-wire regularization radius squared
};

/// Precompute the frame of the segment `a`->`b` with regularization `radius`.
/// Throws if the segment is degenerate.
[[nodiscard]] SegmentFrame make_segment_frame(geom::Vec3 a, geom::Vec3 b, double radius);

/// Analytic I0, I1 for field point `p` against a precomputed segment frame.
/// Exactly a batch of one of segment_potentials_batch.
[[nodiscard]] SegmentPotentials segment_potentials(const SegmentFrame& frame, geom::Vec3 p);

/// Analytic I0, I1 for field point `p` against the segment `a`->`b` with
/// thin-wire regularization radius `radius` (> 0 for self/near interactions;
/// 0 is allowed when p is off the segment axis).
[[nodiscard]] SegmentPotentials segment_potentials(geom::Vec3 p, geom::Vec3 a, geom::Vec3 b,
                                                   double radius);

/// Batched analytic I0, I1: one segment frame against `count` field points
/// given in structure-of-arrays form. Vectorized; throws like the scalar
/// entry if any point lies on an unregularized axis (outputs are garbage in
/// that case — the exception is the result).
void segment_potentials_batch(const SegmentFrame& frame, const double* xs, const double* ys,
                              const double* zs, std::size_t count, double* out_i0,
                              double* out_i1);

/// The original asinh/sqrt formulation, kept as an independent cross-check
/// of the production kernel and as the "scalar" baseline of bench_kernels.
/// Agrees with segment_potentials to ~1e-14 relative away from the
/// conditioning edge (it, not the log1p form, loses digits for far points
/// beyond the segment ends).
[[nodiscard]] SegmentPotentials segment_potentials_reference(const SegmentFrame& frame,
                                                             geom::Vec3 p);

/// Structure-of-arrays description of every mirrored image of one straight
/// source segment. Images only remap z (z -> mirror * z + offset), so they
/// all share the base's x/y start, horizontal axis components, length and
/// regularization; the per-term state is the start depth, the signed
/// vertical axis component and the series weight.
struct ImageSegmentSweep {
  double ax = 0.0;      ///< base start x (shared by every image)
  double ay = 0.0;      ///< base start y
  double ux = 0.0;      ///< unit-axis x component (shared)
  double uy = 0.0;      ///< unit-axis y component
  double length = 0.0;
  double radius2 = 0.0;
  std::vector<double> az;      ///< per image: start depth, mirror * a.z + offset
  std::vector<double> muz;     ///< per image: mirror * u.z
  std::vector<double> weight;  ///< per image: series weight
  /// First term of the single-precision tail (mixed-precision experiment);
  /// == size() keeps the whole sweep in double. The builder orders the
  /// small-weight tail terms after tail_begin.
  std::size_t tail_begin = 0;

  [[nodiscard]] std::size_t size() const { return az.size(); }

  void clear() {
    az.clear();
    muz.clear();
    weight.clear();
    tail_begin = 0;
  }
};

/// Fused image-term sweep: accumulate the weighted inner integrals of every
/// image in `sweep` against `count` field points (SoA). For a linear basis,
///   acc0[q] += sum_t w_t * (I0 - I1/L)   (start-node shape integral)
///   acc1[q] += sum_t w_t * I1/L          (end-node shape integral)
/// and for a constant basis acc0[q] += sum_t w_t * I0 with acc1 untouched.
/// Terms at index >= sweep.tail_begin are evaluated in single precision and
/// folded into the double accumulators once (the mixed-precision
/// experiment; see IntegratorOptions::mixed_tail_threshold for the bound).
/// Throws like segment_potentials if any (image, point) pairing hits an
/// unregularized axis.
void accumulate_image_sweep(const ImageSegmentSweep& sweep, const double* xs, const double* ys,
                            const double* zs, std::size_t count, bool linear_basis,
                            double* acc0, double* acc1);

/// Reference sweep: same contract as accumulate_image_sweep, evaluated term
/// by term and point by point through segment_potentials_reference. This is
/// the pre-SIMD code path, selectable via IntegratorOptions::segment_eval —
/// the cross-check and the benchmark baseline, never the production path.
void accumulate_image_sweep_reference(const ImageSegmentSweep& sweep, const double* xs,
                                      const double* ys, const double* zs, std::size_t count,
                                      bool linear_basis, double* acc0, double* acc1);

/// Integral of the linear shape function attached to the start node
/// (N(t) = 1 - t/L) divided by r: I0 - I1 / L.
[[nodiscard]] inline double shape_start_integral(const SegmentPotentials& s, double length) {
  return s.i0 - s.i1 / length;
}

/// Integral of the linear shape function attached to the end node
/// (N(t) = t/L) divided by r: I1 / L.
[[nodiscard]] inline double shape_end_integral(const SegmentPotentials& s, double length) {
  return s.i1 / length;
}

}  // namespace ebem::bem

// Closed-form single-layer potential integrals over straight segments.
//
// These are the "highly efficient analytical integration techniques" of the
// paper (§4.2, ref [4]): for a field point P and a straight source segment,
// the inner integrals
//   I0 = Integral_0^L            dt / r(P, xi(t))
//   I1 = Integral_0^L        t * dt / r(P, xi(t))
// have closed forms once the kernel is regularized with the thin-wire
// radius, r = sqrt(|P - xi|^2 + a^2). Linear shape functions are linear
// combinations of I0 and I1, so every elemental coefficient of eq. (4.5)
// reduces to an outer quadrature over these closed forms — term by image
// term, because the image of a straight segment is a straight segment.
//
// The batched integrator evaluates one segment against many field points
// (all outer Gauss points of an element pair), so the segment-only part of
// the computation — axis direction, length, regularization — is split into
// a SegmentFrame computed once and reused per field point.
#pragma once

#include "src/geom/vec3.hpp"

namespace ebem::bem {

/// Result of the analytic inner integration against a source segment.
struct SegmentPotentials {
  double i0 = 0.0;  ///< integral of 1/r
  double i1 = 0.0;  ///< integral of t/r (t = arc length from segment start)
};

/// Field-point-independent part of the segment integrals: unit axis, length
/// and squared regularization radius, computed once per (image) segment.
struct SegmentFrame {
  geom::Vec3 a;         ///< segment start
  geom::Vec3 u;         ///< unit axis (b - a) / |b - a|
  double length = 0.0;  ///< |b - a|
  double radius2 = 0.0; ///< thin-wire regularization radius squared
};

/// Precompute the frame of the segment `a`->`b` with regularization `radius`.
/// Throws if the segment is degenerate.
[[nodiscard]] SegmentFrame make_segment_frame(geom::Vec3 a, geom::Vec3 b, double radius);

/// Analytic I0, I1 for field point `p` against a precomputed segment frame.
[[nodiscard]] SegmentPotentials segment_potentials(const SegmentFrame& frame, geom::Vec3 p);

/// Analytic I0, I1 for field point `p` against the segment `a`->`b` with
/// thin-wire regularization radius `radius` (> 0 for self/near interactions;
/// 0 is allowed when p is off the segment axis).
[[nodiscard]] SegmentPotentials segment_potentials(geom::Vec3 p, geom::Vec3 a, geom::Vec3 b,
                                                   double radius);

/// Integral of the linear shape function attached to the start node
/// (N(t) = 1 - t/L) divided by r: I0 - I1 / L.
[[nodiscard]] inline double shape_start_integral(const SegmentPotentials& s, double length) {
  return s.i0 - s.i1 / length;
}

/// Integral of the linear shape function attached to the end node
/// (N(t) = t/L) divided by r: I1 / L.
[[nodiscard]] inline double shape_end_integral(const SegmentPotentials& s, double length) {
  return s.i1 / length;
}

}  // namespace ebem::bem

// Geometric DoF clustering: recursive coordinate bisection (RCB) of the DoF
// support points into a binary cluster tree whose leaves are exactly the
// tile rows of the matrix layout, plus the la::Permutation that maps the
// model's DoF numbering onto that tree order.
//
// Why RCB over a Hilbert/Morton space-filling curve: the curve orders
// points, but tile rows are then arbitrary *curve segments* — their boxes
// can straddle curve discontinuities (a Hilbert segment crossing a fold has
// a box far larger than its point set), and the segment boundaries ignore
// the tile size entirely. RCB instead splits on DoF *cardinality* at exactly
// tile-aligned counts: every tree node covers a whole number of tiles, every
// leaf IS one tile row, and each split halves the widest box axis, so leaf
// boxes are near-cubical regardless of the mesh's aspect ratio or numbering.
// That is precisely the geometry the far-field admissibility gate (box
// separation vs element length, far_field.hpp) wants to see — compact,
// balanced clusters — and it makes the cluster tree deterministic: splits
// use std::nth_element on (coordinate, DoF id), so equal coordinates break
// ties by id and the ordering is reproducible across platforms and runs.
//
// The tree is returned alongside the permutation for the invariant tests
// (leaves partition the DoF set, boxes contain their members) and for the
// stats forwarded onto the engine PhaseReport.
#pragma once

#include <cstddef>
#include <vector>

#include "src/bem/element.hpp"
#include "src/geom/vec3.hpp"
#include "src/la/permutation.hpp"

namespace ebem::bem {

/// One node of the RCB cluster tree, covering the *internal* (permuted) DoF
/// range [begin, end). Leaves cover exactly one tile row.
struct ClusterNode {
  static constexpr std::size_t kNoChild = static_cast<std::size_t>(-1);

  std::size_t begin = 0;
  std::size_t end = 0;
  geom::Vec3 box_min;  ///< bounding box of the member DoF support points
  geom::Vec3 box_max;
  std::size_t left = kNoChild;  ///< child node ids; kNoChild marks a leaf
  std::size_t right = kNoChild;

  [[nodiscard]] bool is_leaf() const { return left == kNoChild; }
};

/// The RCB tree over internal DoF ranges; nodes[0] is the root (when the
/// model has any DoFs), children always appear after their parent.
struct ClusterTree {
  std::vector<ClusterNode> nodes;
  std::vector<std::size_t> leaves;  ///< leaf node ids, ascending by begin
};

/// Summary of one geometric ordering, forwarded to the engine PhaseReport.
struct OrderingStats {
  std::size_t cluster_leaves = 0;  ///< leaf count == tile rows of the layout
  std::size_t tree_depth = 0;      ///< root-to-leaf edge count (0 = leaf root)
};

/// Support point of every DoF: the element midpoint for the constant basis
/// (one DoF per element), the shared node position for the linear basis.
[[nodiscard]] std::vector<geom::Vec3> dof_positions(const BemModel& model, BasisKind basis);

struct GeometricOrdering {
  la::Permutation permutation;  ///< external (model) -> internal (tree) order
  ClusterTree tree;
  OrderingStats stats;
};

/// RCB-cluster the model's DoFs for a tile_size-tiled matrix layout. Leaves
/// of the returned tree coincide with la::TileLayout(n, tile_size) tile
/// rows, so far_field.hpp's tile-row clusters become the tree's leaf
/// clusters once assembly scatters through the permutation.
[[nodiscard]] GeometricOrdering geometric_ordering(const BemModel& model, BasisKind basis,
                                                   std::size_t tile_size);

}  // namespace ebem::bem

#include "src/bem/segment_integrals.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"

namespace ebem::bem {

SegmentFrame make_segment_frame(geom::Vec3 a, geom::Vec3 b, double radius) {
  const geom::Vec3 axis = b - a;
  const double length = geom::norm(axis);
  EBEM_EXPECT(length > 0.0, "source segment must have positive length");
  return {a, axis / length, length, square(radius)};
}

SegmentPotentials segment_potentials(const SegmentFrame& frame, geom::Vec3 p) {
  const geom::Vec3 w = p - frame.a;
  const double t0 = geom::dot(w, frame.u);  // foot of the perpendicular
  // Squared distance from p to the segment axis, plus the wire radius.
  const double perp2 = std::max(geom::dot(w, w) - t0 * t0, 0.0) + frame.radius2;
  EBEM_EXPECT(perp2 > 0.0, "field point lies on the (unregularized) source axis");
  const double h = std::sqrt(perp2);

  // I0 = asinh((L - t0)/h) - asinh(-t0/h).
  const double s1 = (frame.length - t0) / h;
  const double s0 = -t0 / h;
  SegmentPotentials result;
  result.i0 = std::asinh(s1) - std::asinh(s0);
  // I1 = sqrt((L-t0)^2 + h^2) - sqrt(t0^2 + h^2) + t0 * I0.
  result.i1 = std::sqrt(square(frame.length - t0) + perp2) -
              std::sqrt(square(t0) + perp2) + t0 * result.i0;
  return result;
}

SegmentPotentials segment_potentials(geom::Vec3 p, geom::Vec3 a, geom::Vec3 b, double radius) {
  return segment_potentials(make_segment_frame(a, b, radius), p);
}

}  // namespace ebem::bem

#include "src/bem/segment_integrals.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"
#include "src/common/simd.hpp"

namespace ebem::bem {

namespace {

/// Branch-free lane kernel (header notes derive the formulation). The
/// selects compile to blends under SIMD; on an on-axis lane (perp2 == 0 with
/// t0 inside the segment) the result is inf/nan, which the callers turn
/// into the documented exception via the perp2 minimum they track.
struct Lane {
  double i0, i1;
};

inline Lane lane_kernel(double t0, double perp2, double length) {
  const double u1 = length - t0;
  const double r0 = std::sqrt(t0 * t0 + perp2);
  const double r1 = std::sqrt(u1 * u1 + perp2);
  const double s = r0 + r1;
  // A and C in fraction form (all four parts positive, no cancellation):
  // A = an/ad, C = cn/cd. One reciprocal then serves both integrals —
  // y = L(A+C)/(sA) clears to L(an cd + cn ad)/(cd s an), and
  // 1/s = cd an inv — cutting the per-lane divisions from four to one
  // (division throughput dominates this loop on wide vectors).
  const double an = t0 > 0.0 ? perp2 : r0 - t0;
  const double ad = t0 > 0.0 ? r0 + t0 : 1.0;
  const double cn = u1 < 0.0 ? perp2 : r1 + u1;
  const double cd = u1 < 0.0 ? r1 - u1 : 1.0;
  const double inv = 1.0 / (cd * s * an);
  Lane lane;
  lane.i0 = simd_log1p(length * (an * cd + cn * ad) * inv);
  lane.i1 = length * (length - 2.0 * t0) * (cd * an * inv) + t0 * lane.i0;
  return lane;
}

struct LaneF {
  float i0, i1;
};

inline LaneF lane_kernel(float t0, float perp2, float length) {
  const float u1 = length - t0;
  const float r0 = std::sqrt(t0 * t0 + perp2);
  const float r1 = std::sqrt(u1 * u1 + perp2);
  const float s = r0 + r1;
  // Same single-division fraction form as the double lane above.
  const float an = t0 > 0.0f ? perp2 : r0 - t0;
  const float ad = t0 > 0.0f ? r0 + t0 : 1.0f;
  const float cn = u1 < 0.0f ? perp2 : r1 + u1;
  const float cd = u1 < 0.0f ? r1 - u1 : 1.0f;
  const float inv = 1.0f / (cd * s * an);
  LaneF lane;
  lane.i0 = simd_log1p(length * (an * cd + cn * ad) * inv);
  lane.i1 = length * (length - 2.0f * t0) * (cd * an * inv) + t0 * lane.i0;
  return lane;
}

/// Per-thread SoA workspace of the short-sweep path: the field points'
/// hoisted horizontal products (term-independent across the image loop).
struct SweepScratch {
  std::vector<double> points;  // wx | wy | txy | cz2, `count` each
};

/// Sweeps at least this long vectorize over the *terms* (one register
/// reduction per field point) instead of over the points: the integrator's
/// batches are one Gauss row (~8 points), which is too short to reach the
/// autovectorizer's unrolled main loop, while a layered-soil image series
/// runs to O(100) terms and amortizes the vector setup perfectly.
constexpr std::size_t kTermVectorThreshold = 16;

constexpr const char* kOnAxisMessage = "field point lies on the (unregularized) source axis";

// The multiversioned cores below never throw: GCC's target_clones dispatch
// cannot unwind an exception (the process terminates instead of reaching the
// caller's handler), so each core returns the minimum perp2 it saw and the
// thin un-cloned wrappers turn a non-positive minimum into the documented
// InvalidArgument.

EBEM_SIMD_MULTIVERSION
double segment_potentials_batch_core(const SegmentFrame& frame, const double* EBEM_RESTRICT xs,
                                     const double* EBEM_RESTRICT ys,
                                     const double* EBEM_RESTRICT zs, std::size_t count,
                                     double* EBEM_RESTRICT out_i0,
                                     double* EBEM_RESTRICT out_i1) {
  const double ax = frame.a.x, ay = frame.a.y, az = frame.a.z;
  const double ux = frame.u.x, uy = frame.u.y, uz = frame.u.z;
  const double length = frame.length;
  const double radius2 = frame.radius2;
  double pmin = std::numeric_limits<double>::infinity();
  EBEM_SIMD_LOOP_REDUCE(min : pmin)
  for (std::size_t q = 0; q < count; ++q) {
    const double wx = xs[q] - ax;
    const double wy = ys[q] - ay;
    const double wz = zs[q] - az;
    const double t0 = wx * ux + wy * uy + wz * uz;
    // Squared axis distance as |w x u|^2: exact zero on the axis, no
    // cancellation of large |w|^2 against t0^2 off it.
    const double cx = wy * uz - wz * uy;
    const double cy = wz * ux - wx * uz;
    const double cz = wx * uy - wy * ux;
    const double perp2 = cx * cx + cy * cy + cz * cz + radius2;
    pmin = std::min(pmin, perp2);
    const Lane lane = lane_kernel(t0, perp2, length);
    out_i0[q] = lane.i0;
    out_i1[q] = lane.i1;
  }
  return pmin;
}

}  // namespace

SegmentFrame make_segment_frame(geom::Vec3 a, geom::Vec3 b, double radius) {
  const geom::Vec3 axis = b - a;
  const double length = geom::norm(axis);
  EBEM_EXPECT(length > 0.0, "source segment must have positive length");
  return {a, axis / length, length, square(radius)};
}

void segment_potentials_batch(const SegmentFrame& frame, const double* xs, const double* ys,
                              const double* zs, std::size_t count, double* out_i0,
                              double* out_i1) {
  const double pmin = segment_potentials_batch_core(frame, xs, ys, zs, count, out_i0, out_i1);
  EBEM_EXPECT(pmin > 0.0, kOnAxisMessage);
}

SegmentPotentials segment_potentials(const SegmentFrame& frame, geom::Vec3 p) {
  SegmentPotentials result;
  segment_potentials_batch(frame, &p.x, &p.y, &p.z, 1, &result.i0, &result.i1);
  return result;
}

SegmentPotentials segment_potentials(geom::Vec3 p, geom::Vec3 a, geom::Vec3 b, double radius) {
  return segment_potentials(make_segment_frame(a, b, radius), p);
}

SegmentPotentials segment_potentials_reference(const SegmentFrame& frame, geom::Vec3 p) {
  const geom::Vec3 w = p - frame.a;
  const double t0 = geom::dot(w, frame.u);  // foot of the perpendicular
  // Squared distance from p to the segment axis, plus the wire radius.
  const double perp2 = std::max(geom::dot(w, w) - t0 * t0, 0.0) + frame.radius2;
  EBEM_EXPECT(perp2 > 0.0, kOnAxisMessage);
  const double h = std::sqrt(perp2);

  // I0 = asinh((L - t0)/h) - asinh(-t0/h).
  const double s1 = (frame.length - t0) / h;
  const double s0 = -t0 / h;
  SegmentPotentials result;
  result.i0 = std::asinh(s1) - std::asinh(s0);
  // I1 = sqrt((L-t0)^2 + h^2) - sqrt(t0^2 + h^2) + t0 * I0.
  result.i1 = std::sqrt(square(frame.length - t0) + perp2) -
              std::sqrt(square(t0) + perp2) + t0 * result.i0;
  return result;
}

namespace {

EBEM_SIMD_MULTIVERSION
double accumulate_image_sweep_core(const ImageSegmentSweep& sweep,
                                   const double* EBEM_RESTRICT xs,
                                   const double* EBEM_RESTRICT ys,
                                   const double* EBEM_RESTRICT zs, std::size_t count,
                                   bool linear_basis, double* EBEM_RESTRICT acc0,
                                   double* EBEM_RESTRICT acc1) {
  double pmin = std::numeric_limits<double>::infinity();
  const std::size_t terms = sweep.size();
  if (count == 0 || terms == 0) return pmin;

  const double ax = sweep.ax, ay = sweep.ay;
  const double ux = sweep.ux, uy = sweep.uy;
  const double length = sweep.length;
  const double radius2 = sweep.radius2;
  const double inv_length = 1.0 / length;
  const double* EBEM_RESTRICT az = sweep.az.data();
  const double* EBEM_RESTRICT muz = sweep.muz.data();
  const double* EBEM_RESTRICT weight = sweep.weight.data();

  const std::size_t head = std::min(sweep.tail_begin, terms);
  if (head >= kTermVectorThreshold) {
    // Long sweep: vectorize over the image terms. Each field point hoists
    // its term-independent products into registers and reduces its whole
    // series with register accumulators — no per-term loads or stores of
    // the accumulator arrays, and a trip count long enough that the
    // vectorized main loop actually runs.
    for (std::size_t q = 0; q < count; ++q) {
      const double wxq = xs[q] - ax;
      const double wyq = ys[q] - ay;
      const double zq = zs[q];
      const double txyq = wxq * ux + wyq * uy;
      const double czq = wxq * uy - wyq * ux;
      const double cz2q = czq * czq + radius2;
      double a0 = 0.0, a1 = 0.0;
      if (linear_basis) {
        EBEM_SIMD_LOOP_CLAUSES(reduction(min : pmin) reduction(+ : a0, a1))
        for (std::size_t t = 0; t < head; ++t) {
          const double wz = zq - az[t];
          const double t0 = txyq + wz * muz[t];
          const double cx = wyq * muz[t] - wz * uy;
          const double cy = wz * ux - wxq * muz[t];
          const double perp2 = cx * cx + cy * cy + cz2q;
          pmin = std::min(pmin, perp2);
          const Lane lane = lane_kernel(t0, perp2, length);
          const double end = lane.i1 * inv_length;
          a0 += weight[t] * (lane.i0 - end);
          a1 += weight[t] * end;
        }
      } else {
        EBEM_SIMD_LOOP_CLAUSES(reduction(min : pmin) reduction(+ : a0))
        for (std::size_t t = 0; t < head; ++t) {
          const double wz = zq - az[t];
          const double t0 = txyq + wz * muz[t];
          const double cx = wyq * muz[t] - wz * uy;
          const double cy = wz * ux - wxq * muz[t];
          const double perp2 = cx * cx + cy * cy + cz2q;
          pmin = std::min(pmin, perp2);
          a0 += weight[t] * lane_kernel(t0, perp2, length).i0;
        }
      }
      acc0[q] += a0;
      if (linear_basis) acc1[q] += a1;
    }
  } else if (head > 0) {
    // Short sweep (uniform soil runs just the source and its mirror):
    // vectorize over the field points, hoisting what the images share —
    // the horizontal offset, its axis projection and the vertical cross
    // component (the image maps only z, so these never change per term).
    thread_local SweepScratch scratch;
    scratch.points.resize(4 * count);
    double* EBEM_RESTRICT wx = scratch.points.data();
    double* EBEM_RESTRICT wy = wx + count;
    double* EBEM_RESTRICT txy = wy + count;
    double* EBEM_RESTRICT cz2 = txy + count;
    EBEM_SIMD_LOOP
    for (std::size_t q = 0; q < count; ++q) {
      wx[q] = xs[q] - ax;
      wy[q] = ys[q] - ay;
      txy[q] = wx[q] * ux + wy[q] * uy;
      const double cz = wx[q] * uy - wy[q] * ux;
      cz2[q] = cz * cz;
    }
    for (std::size_t t = 0; t < head; ++t) {
      const double azt = az[t];
      const double muzt = muz[t];
      const double w = weight[t];
      if (linear_basis) {
        EBEM_SIMD_LOOP_REDUCE(min : pmin)
        for (std::size_t q = 0; q < count; ++q) {
          const double wz = zs[q] - azt;
          const double t0 = txy[q] + wz * muzt;
          const double cx = wy[q] * muzt - wz * uy;
          const double cy = wz * ux - wx[q] * muzt;
          const double perp2 = cx * cx + cy * cy + cz2[q] + radius2;
          pmin = std::min(pmin, perp2);
          const Lane lane = lane_kernel(t0, perp2, length);
          const double end = lane.i1 * inv_length;
          acc0[q] += w * (lane.i0 - end);
          acc1[q] += w * end;
        }
      } else {
        EBEM_SIMD_LOOP_REDUCE(min : pmin)
        for (std::size_t q = 0; q < count; ++q) {
          const double wz = zs[q] - azt;
          const double t0 = txy[q] + wz * muzt;
          const double cx = wy[q] * muzt - wz * uy;
          const double cy = wz * ux - wx[q] * muzt;
          const double perp2 = cx * cx + cy * cy + cz2[q] + radius2;
          pmin = std::min(pmin, perp2);
          acc0[q] += w * lane_kernel(t0, perp2, length).i0;
        }
      }
    }
  }

  if (head < terms) {
    // Mixed-precision tail: the small-|weight| terms in single precision,
    // folded into the double accumulators once per point. The tail is only
    // ever carved out of a long layered series, so it reduces over the
    // terms exactly like the long-sweep path above.
    const float fux = static_cast<float>(ux);
    const float fuy = static_cast<float>(uy);
    const float flength = static_cast<float>(length);
    const float fradius2 = static_cast<float>(radius2);
    const float finv_length = static_cast<float>(inv_length);
    float fpmin = std::numeric_limits<float>::infinity();
    for (std::size_t q = 0; q < count; ++q) {
      const float fwxq = static_cast<float>(xs[q] - ax);
      const float fwyq = static_cast<float>(ys[q] - ay);
      const float fzq = static_cast<float>(zs[q]);
      const float ftxyq = fwxq * fux + fwyq * fuy;
      const float fczq = fwxq * fuy - fwyq * fux;
      const float fcz2q = fczq * fczq + fradius2;
      float f0 = 0.0f, f1 = 0.0f;
      if (linear_basis) {
        EBEM_SIMD_LOOP_CLAUSES(reduction(min : fpmin) reduction(+ : f0, f1))
        for (std::size_t t = head; t < terms; ++t) {
          const float fazt = static_cast<float>(az[t]);
          const float fmuzt = static_cast<float>(muz[t]);
          const float wz = fzq - fazt;
          const float t0 = ftxyq + wz * fmuzt;
          const float cx = fwyq * fmuzt - wz * fuy;
          const float cy = wz * fux - fwxq * fmuzt;
          const float perp2 = cx * cx + cy * cy + fcz2q;
          fpmin = std::min(fpmin, perp2);
          const LaneF lane = lane_kernel(t0, perp2, flength);
          const float end = lane.i1 * finv_length;
          f0 += static_cast<float>(weight[t]) * (lane.i0 - end);
          f1 += static_cast<float>(weight[t]) * end;
        }
      } else {
        EBEM_SIMD_LOOP_CLAUSES(reduction(min : fpmin) reduction(+ : f0))
        for (std::size_t t = head; t < terms; ++t) {
          const float fazt = static_cast<float>(az[t]);
          const float fmuzt = static_cast<float>(muz[t]);
          const float wz = fzq - fazt;
          const float t0 = ftxyq + wz * fmuzt;
          const float cx = fwyq * fmuzt - wz * fuy;
          const float cy = wz * fux - fwxq * fmuzt;
          const float perp2 = cx * cx + cy * cy + fcz2q;
          fpmin = std::min(fpmin, perp2);
          f0 += static_cast<float>(weight[t]) * lane_kernel(t0, perp2, flength).i0;
        }
      }
      acc0[q] += static_cast<double>(f0);
      if (linear_basis) acc1[q] += static_cast<double>(f1);
    }
    pmin = std::min(pmin, static_cast<double>(fpmin));
  }

  return pmin;
}

}  // namespace

void accumulate_image_sweep(const ImageSegmentSweep& sweep, const double* xs, const double* ys,
                            const double* zs, std::size_t count, bool linear_basis,
                            double* acc0, double* acc1) {
  const double pmin =
      accumulate_image_sweep_core(sweep, xs, ys, zs, count, linear_basis, acc0, acc1);
  EBEM_EXPECT(pmin > 0.0, kOnAxisMessage);
}

void accumulate_image_sweep_reference(const ImageSegmentSweep& sweep, const double* xs,
                                      const double* ys, const double* zs, std::size_t count,
                                      bool linear_basis, double* acc0, double* acc1) {
  const double inv_length = sweep.length > 0.0 ? 1.0 / sweep.length : 0.0;
  for (std::size_t t = 0; t < sweep.size(); ++t) {
    const SegmentFrame frame{{sweep.ax, sweep.ay, sweep.az[t]},
                             {sweep.ux, sweep.uy, sweep.muz[t]},
                             sweep.length,
                             sweep.radius2};
    const double w = sweep.weight[t];
    for (std::size_t q = 0; q < count; ++q) {
      const SegmentPotentials s = segment_potentials_reference(frame, {xs[q], ys[q], zs[q]});
      if (linear_basis) {
        const double end = s.i1 * inv_length;
        acc0[q] += w * (s.i0 - end);
        acc1[q] += w * end;
      } else {
        acc0[q] += w * s.i0;
      }
    }
  }
}

}  // namespace ebem::bem

#include "src/bem/clustering.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/common/error.hpp"

namespace ebem::bem {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double coordinate(const geom::Vec3& p, int axis) {
  return axis == 0 ? p.x : (axis == 1 ? p.y : p.z);
}

/// Axis of the box's largest extent; ties resolve to the lowest axis so the
/// split choice (and with it the whole ordering) is deterministic.
int widest_axis(const geom::Vec3& box_min, const geom::Vec3& box_max) {
  const double dx = box_max.x - box_min.x;
  const double dy = box_max.y - box_min.y;
  const double dz = box_max.z - box_min.z;
  if (dx >= dy && dx >= dz) return 0;
  return dy >= dz ? 1 : 2;
}

}  // namespace

std::vector<geom::Vec3> dof_positions(const BemModel& model, BasisKind basis) {
  std::vector<geom::Vec3> positions(model.dof_count(basis));
  const auto& elements = model.elements();
  for (std::size_t e = 0; e < elements.size(); ++e) {
    const BemElement& element = elements[e];
    if (basis == BasisKind::kLinear) {
      // Shared nodes are written once per incident element — same position
      // every time, so the order of writes does not matter.
      positions[element.node_a] = element.a;
      positions[element.node_b] = element.b;
    } else {
      positions[model.global_dof(basis, e, 0)] = 0.5 * (element.a + element.b);
    }
  }
  return positions;
}

GeometricOrdering geometric_ordering(const BemModel& model, BasisKind basis,
                                     std::size_t tile_size) {
  const std::vector<geom::Vec3> positions = dof_positions(model, basis);
  const std::size_t n = positions.size();
  // Same clamp as TileLayout, so leaf ranges land exactly on tile rows.
  const std::size_t tile =
      std::max<std::size_t>(1, std::min(tile_size, std::max<std::size_t>(1, n)));

  GeometricOrdering ordering;
  // order[i] = external DoF stored at internal slot i; starts as identity
  // and is refined in place by the bisection below.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (n == 0) {
    ordering.permutation = la::Permutation();
    return ordering;
  }

  ClusterTree& tree = ordering.tree;
  std::size_t max_depth = 0;

  const auto build = [&](const auto& self, std::size_t begin, std::size_t end,
                         std::size_t depth) -> std::size_t {
    const std::size_t node_id = tree.nodes.size();
    tree.nodes.push_back({});
    {
      ClusterNode& node = tree.nodes.back();
      node.begin = begin;
      node.end = end;
      node.box_min = {kInf, kInf, kInf};
      node.box_max = {-kInf, -kInf, -kInf};
      for (std::size_t i = begin; i < end; ++i) {
        const geom::Vec3& p = positions[order[i]];
        node.box_min.x = std::min(node.box_min.x, p.x);
        node.box_min.y = std::min(node.box_min.y, p.y);
        node.box_min.z = std::min(node.box_min.z, p.z);
        node.box_max.x = std::max(node.box_max.x, p.x);
        node.box_max.y = std::max(node.box_max.y, p.y);
        node.box_max.z = std::max(node.box_max.z, p.z);
      }
    }
    max_depth = std::max(max_depth, depth);
    if (end - begin <= tile) {
      tree.leaves.push_back(node_id);
      return node_id;
    }

    // Tile-aligned cardinality split: the left child takes floor(tiles / 2)
    // whole tiles, so every node's begin stays a tile multiple and only the
    // final leaf can be short — exactly TileLayout's row geometry.
    const std::size_t tiles = (end - begin + tile - 1) / tile;
    const std::size_t split = begin + (tiles / 2) * tile;
    const int axis = widest_axis(tree.nodes[node_id].box_min, tree.nodes[node_id].box_max);
    std::nth_element(order.begin() + static_cast<std::ptrdiff_t>(begin),
                     order.begin() + static_cast<std::ptrdiff_t>(split),
                     order.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](std::size_t a, std::size_t b) {
                       const double ca = coordinate(positions[a], axis);
                       const double cb = coordinate(positions[b], axis);
                       return ca != cb ? ca < cb : a < b;
                     });
    const std::size_t left = self(self, begin, split, depth + 1);
    const std::size_t right = self(self, split, end, depth + 1);
    tree.nodes[node_id].left = left;
    tree.nodes[node_id].right = right;
    return node_id;
  };
  build(build, 0, n, 0);

  std::vector<std::size_t> internal_of_external(n);
  for (std::size_t i = 0; i < n; ++i) internal_of_external[order[i]] = i;
  ordering.permutation = la::Permutation(std::move(internal_of_external));
  ordering.stats.cluster_leaves = tree.leaves.size();
  ordering.stats.tree_depth = max_depth;
  EBEM_ENSURE(tree.leaves.size() == (n + tile - 1) / tile,
              "RCB leaves must coincide with the tile rows of the layout");
  return ordering;
}

}  // namespace ebem::bem

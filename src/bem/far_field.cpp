#include "src/bem/far_field.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <utility>

#include "src/bem/pair_signature.hpp"
#include "src/common/error.hpp"
#include "src/la/aca.hpp"
#include "src/la/permutation.hpp"
#include "src/parallel/parallel_for.hpp"
#include "src/parallel/schedule.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::bem {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

void grow_box(geom::Vec3& box_min, geom::Vec3& box_max, const geom::Vec3& p) {
  box_min.x = std::min(box_min.x, p.x);
  box_min.y = std::min(box_min.y, p.y);
  box_min.z = std::min(box_min.z, p.z);
  box_max.x = std::max(box_max.x, p.x);
  box_max.y = std::max(box_max.y, p.y);
  box_max.z = std::max(box_max.z, p.z);
}

/// Box + longest-element geometry of a contiguous tile-row range (the
/// element list is merged separately, only where sampling needs it).
TileRowCluster merged_geometry(const std::vector<TileRowCluster>& clusters, std::size_t begin,
                               std::size_t end) {
  TileRowCluster merged;
  constexpr double inf = std::numeric_limits<double>::infinity();
  merged.box_min = {inf, inf, inf};
  merged.box_max = {-inf, -inf, -inf};
  for (std::size_t t = begin; t < end; ++t) {
    const TileRowCluster& c = clusters[t];
    grow_box(merged.box_min, merged.box_max, c.box_min);
    grow_box(merged.box_min, merged.box_max, c.box_max);
    merged.max_element_length = std::max(merged.max_element_length, c.max_element_length);
  }
  return merged;
}

/// Sorted-unique union of the ranges' incident element ids.
std::vector<std::size_t> merged_elements(const std::vector<TileRowCluster>& clusters,
                                         std::size_t begin, std::size_t end) {
  std::vector<std::size_t> merged;
  for (std::size_t t = begin; t < end; ++t) {
    merged.insert(merged.end(), clusters[t].elements.begin(), clusters[t].elements.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

/// One (element, local DoF) incidence of a global DoF.
struct Incidence {
  std::size_t element = 0;
  std::size_t local = 0;
};

/// Incidence lists indexed by *internal* (storage-order) DoF when an
/// ordering is supplied, so ACA samples address matrix rows directly.
std::vector<std::vector<Incidence>> build_incidence(const BemModel& model, BasisKind basis,
                                                    const la::Permutation* ordering) {
  std::vector<std::vector<Incidence>> incidence(model.dof_count(basis));
  const std::size_t locals = model.local_dof_count(basis);
  for (std::size_t e = 0; e < model.element_count(); ++e) {
    for (std::size_t l = 0; l < locals; ++l) {
      const std::size_t dof = model.global_dof(basis, e, l);
      incidence[ordering != nullptr ? ordering->to_internal(dof) : dof].push_back({e, l});
    }
  }
  return incidence;
}

/// ACA outcome of one candidate block.
struct Attempt {
  bool accepted = false;
  bool converged = false;
  la::LowRankBlock block;
  std::size_t pairs_sampled = 0;
  std::size_t pairs_replayed = 0;
};

}  // namespace

double box_distance(const geom::Vec3& a_min, const geom::Vec3& a_max, const geom::Vec3& b_min,
                    const geom::Vec3& b_max) {
  const double dx = std::max({0.0, b_min.x - a_max.x, a_min.x - b_max.x});
  const double dy = std::max({0.0, b_min.y - a_max.y, a_min.y - b_max.y});
  const double dz = std::max({0.0, b_min.z - a_max.z, a_min.z - b_max.z});
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

std::vector<TileRowCluster> build_tile_row_clusters(const BemModel& model, BasisKind basis,
                                                    const la::TileLayout& layout,
                                                    const la::Permutation* ordering) {
  EBEM_EXPECT(layout.n() == model.dof_count(basis),
              "tile layout dimension does not match the model's DoF count");
  EBEM_EXPECT(ordering == nullptr || ordering->size() == layout.n(),
              "DoF ordering dimension does not match the tile layout");
  constexpr double inf = std::numeric_limits<double>::infinity();
  std::vector<TileRowCluster> clusters(layout.tile_rows());
  for (TileRowCluster& c : clusters) {
    c.box_min = {inf, inf, inf};
    c.box_max = {-inf, -inf, -inf};
  }
  const std::size_t locals = model.local_dof_count(basis);
  const auto& elements = model.elements();
  for (std::size_t e = 0; e < elements.size(); ++e) {
    for (std::size_t l = 0; l < locals; ++l) {
      const std::size_t dof = model.global_dof(basis, e, l);
      const std::size_t tile_row =
          layout.tile_of(ordering != nullptr ? ordering->to_internal(dof) : dof);
      TileRowCluster& c = clusters[tile_row];
      c.elements.push_back(e);
      grow_box(c.box_min, c.box_max, elements[e].a);
      grow_box(c.box_min, c.box_max, elements[e].b);
      c.max_element_length = std::max(c.max_element_length, elements[e].length);
    }
  }
  for (TileRowCluster& c : clusters) {
    std::sort(c.elements.begin(), c.elements.end());
    c.elements.erase(std::unique(c.elements.begin(), c.elements.end()), c.elements.end());
    EBEM_ENSURE(!c.elements.empty(), "every tile row must be supported by at least one element");
  }
  return clusters;
}

bool clusters_admissible(const TileRowCluster& a, const TileRowCluster& b) {
  const double separation = box_distance(a.box_min, a.box_max, b.box_min, b.box_max);
  return transpose_separated(separation,
                             std::max(a.max_element_length, b.max_element_length));
}

FarFieldPartition partition_far_field(const BemModel& model, BasisKind basis,
                                      const la::TileLayout& layout,
                                      const la::CompressionConfig& compression,
                                      const la::Permutation* ordering) {
  EBEM_EXPECT(compression.enabled(), "partition_far_field requires an enabled compression config");
  FarFieldPartition partition;
  partition.clusters = build_tile_row_clusters(model, basis, layout, ordering);
  const auto& clusters = partition.clusters;

  const auto dofs_in = [&layout](std::size_t tile_begin, std::size_t tile_end) {
    return layout.row_end(tile_end - 1) - layout.row_begin(tile_begin);
  };

  // Recursion over (tile-row range) x (tile-column range). Diagonal squares
  // split into two diagonal children plus one below-diagonal block;
  // below-diagonal blocks either pass the admissibility gate whole (maximal
  // blocks — the recursion never splits an admissible range), stay dense
  // when a side is too small to ever pay for a factor, or split their larger
  // side and recurse. Near tiles are simply the ones no candidate covers.
  const auto visit = [&](const auto& self, std::size_t rb, std::size_t re, std::size_t cb,
                         std::size_t ce) -> void {
    if (rb == cb) {  // diagonal square (re == ce)
      if (re - rb <= 1) return;
      const std::size_t mid = rb + (re - rb) / 2;
      self(self, rb, mid, rb, mid);
      self(self, mid, re, rb, mid);
      self(self, mid, re, mid, re);
      return;
    }
    if (dofs_in(rb, re) < compression.min_block || dofs_in(cb, ce) < compression.min_block) {
      return;  // dense: no subrange can reach min_block either
    }
    const TileRowCluster rows = merged_geometry(clusters, rb, re);
    const TileRowCluster cols = merged_geometry(clusters, cb, ce);
    if (clusters_admissible(rows, cols)) {
      partition.candidates.push_back({rb, re, cb, ce});
      return;
    }
    if (re - rb <= 1 && ce - cb <= 1) return;  // single near tile
    if (re - rb >= ce - cb) {
      const std::size_t mid = rb + (re - rb) / 2;
      self(self, rb, mid, cb, ce);
      self(self, mid, re, cb, ce);
    } else {
      const std::size_t mid = cb + (ce - cb) / 2;
      self(self, rb, re, cb, mid);
      self(self, rb, re, mid, ce);
    }
  };
  if (layout.tile_rows() > 0) visit(visit, 0, layout.tile_rows(), 0, layout.tile_rows());
  return partition;
}

namespace {

/// ACA of one candidate block, sampling matrix rows/columns through the
/// integrator's batched entry point. A matrix entry (r, c) of the Galerkin
/// system is sum over elements e incident to r and f incident to c of
/// R^{e f}[local(r in e)][local(c in f)]; a column sample fixes one source
/// element f at a time and batches it against every element supporting the
/// block's rows, and a row sample fixes a row-side source and batches it
/// against the column-side elements, reading the blocks transposed — the
/// block is admissible, where Galerkin reciprocity holds far below the ACA
/// tolerance (see kTransposeSeparationRatio).
Attempt run_aca(const FarBlock& fb, const BemModel& model,
                const std::vector<std::vector<Incidence>>& incidence,
                const std::vector<TileRowCluster>& clusters, const Integrator& integrator,
                const la::TileLayout& layout, const la::CompressionConfig& compression,
                CongruenceCache* cache) {
  const auto& elements = model.elements();
  const std::size_t r0 = layout.row_begin(fb.row_tile_begin);
  const std::size_t r1 = layout.row_end(fb.row_tile_end - 1);
  const std::size_t c0 = layout.row_begin(fb.col_tile_begin);
  const std::size_t c1 = layout.row_end(fb.col_tile_end - 1);

  const std::vector<std::size_t> row_elems =
      merged_elements(clusters, fb.row_tile_begin, fb.row_tile_end);
  const std::vector<std::size_t> col_elems =
      merged_elements(clusters, fb.col_tile_begin, fb.col_tile_end);

  // Element id -> batch slot, for scattering batched blocks into entries.
  std::vector<std::size_t> row_slot(model.element_count(), kNone);
  std::vector<std::size_t> col_slot(model.element_count(), kNone);
  std::vector<const BemElement*> row_fields(row_elems.size());
  std::vector<const BemElement*> col_fields(col_elems.size());
  for (std::size_t k = 0; k < row_elems.size(); ++k) {
    row_slot[row_elems[k]] = k;
    row_fields[k] = &elements[row_elems[k]];
  }
  for (std::size_t k = 0; k < col_elems.size(); ++k) {
    col_slot[col_elems[k]] = k;
    col_fields[k] = &elements[col_elems[k]];
  }
  std::vector<LocalMatrix> row_blocks(row_elems.size());
  std::vector<LocalMatrix> col_blocks(col_elems.size());

  Attempt attempt;

  // Column sample A(:, c): every source element f supporting DoF c, batched
  // against the row-side field elements; out[k] accumulates over f.
  const auto sample_col = [&](std::size_t col, double* out) {
    std::fill(out, out + (r1 - r0), 0.0);
    for (const Incidence& src : incidence[c0 + col]) {
      integrator.element_pair_batch(elements[src.element], row_fields, row_blocks.data(), cache,
                                    &attempt.pairs_replayed);
      attempt.pairs_sampled += row_fields.size();
      for (std::size_t r = r0; r < r1; ++r) {
        double entry = 0.0;
        for (const Incidence& fld : incidence[r]) {
          entry += row_blocks[row_slot[fld.element]].value[fld.local][src.local];
        }
        out[r - r0] += entry;
      }
    }
  };
  // Row sample A(r, :): same batching with the roles flipped; the batched
  // blocks are R^{col-element, row-element}, read transposed.
  const auto sample_row = [&](std::size_t row, double* out) {
    std::fill(out, out + (c1 - c0), 0.0);
    for (const Incidence& src : incidence[r0 + row]) {
      integrator.element_pair_batch(elements[src.element], col_fields, col_blocks.data(), cache,
                                    &attempt.pairs_replayed);
      attempt.pairs_sampled += col_fields.size();
      for (std::size_t c = c0; c < c1; ++c) {
        double entry = 0.0;
        for (const Incidence& fld : incidence[c]) {
          entry += col_blocks[col_slot[fld.element]].value[fld.local][src.local];
        }
        out[c - c0] += entry;
      }
    }
  };

  // Rank budget: never sample past the profitable ceiling. Each rank costs
  // (rows + cols) stored doubles and O(rank * elements) sampled pair
  // integrations, so a factor must undercut *half* the dense bytes it
  // replaces to be worth either bill; blocks that cannot converge within
  // that budget — long thin clusters at modest separation — report
  // !converged after a bounded sampling spend and split (their children
  // usually fall below min_block and stay dense).
  const std::size_t covered_tiles =
      (fb.row_tile_end - fb.row_tile_begin) * (fb.col_tile_end - fb.col_tile_begin);
  const std::size_t covered_bytes = covered_tiles * layout.tile_bytes();
  const std::size_t profitable_rank =
      covered_bytes / 2 / (((r1 - r0) + (c1 - c0)) * sizeof(double));
  // Demand real headroom, not just a positive budget: blocks straddling the
  // admissibility gate carry ranks in the 20-35 band (measured on uniform
  // and elongated bench grids), so a budget below ~1.5x that band is a coin
  // flip whose sampling bill rivals the pair integrations it could skip.
  // Such blocks — and every child a split would produce, whose budget only
  // shrinks — are cheapest left dense without sampling a single entry.
  if (profitable_rank < compression.min_rank_budget) return attempt;  // cannot pay off

  // The block tolerance is tightened by a safety margin below the
  // user-facing epsilon: ACA's Frobenius stopping estimate is itself an
  // approximation, and entries feed a solve whose conditioning amplifies
  // block errors slightly. The margin keeps the end-to-end parity within
  // the configured epsilon.
  la::AcaOptions options;
  options.epsilon = 0.1 * compression.epsilon;
  options.max_rank = std::min(compression.max_rank, profitable_rank);
  la::AcaResult aca = la::adaptive_cross(r1 - r0, c1 - c0, sample_row, sample_col, options);

  const std::size_t factor_bytes = aca.rank * ((r1 - r0) + (c1 - c0)) * sizeof(double);
  if (aca.converged && 2 * factor_bytes <= covered_bytes) {
    attempt.accepted = true;
    attempt.block.row_begin = r0;
    attempt.block.row_end = r1;
    attempt.block.col_begin = c0;
    attempt.block.col_end = c1;
    attempt.block.rank = aca.rank;
    attempt.block.u = std::move(aca.u);
    attempt.block.v = std::move(aca.v);
  }
  attempt.converged = aca.converged;
  return attempt;
}

/// Halve `fb`'s larger tile side; children below min_block DoFs fall back to
/// dense (dropped). Admissibility is inherited from the parent — shrinking a
/// cluster can only grow its box separation.
void split_block(const FarBlock& fb, const la::TileLayout& layout,
                 const la::CompressionConfig& compression, std::vector<FarBlock>* out) {
  const std::size_t row_tiles = fb.row_tile_end - fb.row_tile_begin;
  const std::size_t col_tiles = fb.col_tile_end - fb.col_tile_begin;
  if (row_tiles <= 1 && col_tiles <= 1) return;  // single tile: stays dense

  std::array<FarBlock, 2> children{fb, fb};
  if (row_tiles >= col_tiles) {
    const std::size_t mid = fb.row_tile_begin + row_tiles / 2;
    children[0].row_tile_end = mid;
    children[1].row_tile_begin = mid;
  } else {
    const std::size_t mid = fb.col_tile_begin + col_tiles / 2;
    children[0].col_tile_end = mid;
    children[1].col_tile_begin = mid;
  }
  for (const FarBlock& child : children) {
    const std::size_t rows =
        layout.row_end(child.row_tile_end - 1) - layout.row_begin(child.row_tile_begin);
    const std::size_t cols =
        layout.row_end(child.col_tile_end - 1) - layout.row_begin(child.col_tile_begin);
    if (rows >= compression.min_block && cols >= compression.min_block) out->push_back(child);
  }
}

}  // namespace

void build_far_field(la::CompressedTileStore& store, const BemModel& model, BasisKind basis,
                     const Integrator& integrator, const FarFieldPartition& partition,
                     par::ThreadPool* pool, FarFieldStats& stats,
                     const la::Permutation* ordering, CongruenceCache* cache) {
  const la::TileLayout& layout = store.layout();
  const la::CompressionConfig& compression = store.config().compression;
  EBEM_EXPECT(compression.enabled(), "build_far_field requires a compression-enabled store");
  EBEM_EXPECT(partition.clusters.size() == layout.tile_rows(),
              "partition does not match the store's tile layout");

  const std::vector<std::vector<Incidence>> incidence = build_incidence(model, basis, ordering);

  // Wave loop: try every candidate (in parallel — each attempt touches only
  // its own buffers and results slot), install the accepted factors serially
  // in candidate order (deterministic content regardless of thread timing),
  // and queue the splits of rank-budget failures for the next wave. Blocks
  // that converge but would not undercut their dense tiles stay dense —
  // splitting cannot improve them (child ranks barely drop while the row/col
  // spans halve, so the per-tile factor price goes up, not down).
  std::vector<FarBlock> wave = partition.candidates;
  while (!wave.empty()) {
    std::vector<Attempt> attempts(wave.size());
    const auto run = [&](std::size_t k) {
      attempts[k] = run_aca(wave[k], model, incidence, partition.clusters, integrator, layout,
                            compression, cache);
    };
    if (pool != nullptr && pool->num_threads() > 1 && wave.size() > 1) {
      par::parallel_for(*pool, wave.size(), par::Schedule::dynamic(1), run);
    } else {
      for (std::size_t k = 0; k < wave.size(); ++k) run(k);
    }

    std::vector<FarBlock> next;
    for (std::size_t k = 0; k < wave.size(); ++k) {
      Attempt& attempt = attempts[k];
      stats.pairs_sampled += attempt.pairs_sampled;
      stats.pairs_replayed += attempt.pairs_replayed;
      if (attempt.accepted) {
        store.install(std::move(attempt.block));
      } else if (!attempt.converged) {
        split_block(wave[k], layout, compression, &next);
      }
    }
    wave = std::move(next);
  }
}

}  // namespace ebem::bem

// End-to-end grounding analysis: mesh -> Galerkin system -> leakage current
// -> design parameters (paper eq. 2.2).
//
// Solves with the normalized GPR V_Gamma = 1 (the paper notes this is not
// restrictive since everything is proportional to the GPR) and rescales the
// reported currents/potentials by the actual GPR.
#pragma once

#include <vector>

#include "src/bem/assembly.hpp"
#include "src/bem/solver.hpp"
#include "src/common/phase_report.hpp"

namespace ebem::bem {

/// Names of the cache counters analyze() (and the engine's factor path)
/// accumulate on a PhaseReport — shared constants so every producer lands
/// on one session total.
inline constexpr const char* kCacheHitsCounter = "Congruence cache hits";
inline constexpr const char* kCacheMissesCounter = "Congruence cache misses";

/// Physics of one analysis: what system to build and at which GPR. The
/// solver choice and all execution state (threads, pools, caches) are
/// supplied separately through AnalysisExecution — or, at the session level,
/// once through an engine::ExecutionConfig.
struct AnalysisOptions {
  AssemblyOptions assembly;
  double gpr = 1.0;  ///< Ground Potential Rise V_Gamma [V]

  friend bool operator==(const AnalysisOptions&, const AnalysisOptions&) = default;
};

/// Resolved execution plan for one analysis (assembly + solve phases). The
/// default runs the serial reference path with the direct solver.
struct AnalysisExecution {
  AssemblyExecution assembly;
  SolverOptions solver;
  SolveExecution solve;
};

struct AnalysisResult {
  /// Nodal (linear basis) or per-element (constant basis) leakage current
  /// densities sigma_i [A/m] at the actual GPR.
  std::vector<double> sigma;
  double total_current = 0.0;          ///< I_Gamma [A]
  double equivalent_resistance = 0.0;  ///< R_eq = GPR / I_Gamma [Ohm]
  SolveStats solve_stats;
  std::vector<double> column_costs;    ///< forwarded from assembly, if measured
  CongruenceCacheStats cache_stats;    ///< forwarded from assembly (zeros if disabled)
  la::TileStoreStats matrix_tiles;     ///< matrix-store pager counters from assembly
  la::CompressionStats compression;    ///< far-field compression outcome (zeros if disabled)
  FarFieldStats far_field;             ///< near/sampled/skipped pair split (zeros if disabled)
  OrderingStats ordering_stats;        ///< geometric-ordering summary (zeros if disabled)
};

/// Run the analysis under an explicit execution plan. `report`, when
/// provided, accumulates per-phase timings for the Table 6.1 style breakdown
/// (matrix generation vs solve vs rest) plus the cache counters.
[[nodiscard]] AnalysisResult analyze(const BemModel& model, const AnalysisOptions& options,
                                     const AnalysisExecution& execution,
                                     PhaseReport* report = nullptr);

/// Post-solve tail of analyze(): turn the assembled system plus the
/// normalized solution sigma_hat (of R sigma_hat = nu at V_Gamma = 1) into
/// the final AnalysisResult — total current, equivalent resistance, sigma
/// rescaled to the actual GPR. Shared between the blocking analyze() above
/// and the engine scheduler's staged (assemble / factor / solve) pipeline so
/// both paths produce identical numbers by construction.
[[nodiscard]] AnalysisResult finish_analysis(AssemblyResult system,
                                             std::vector<double> sigma_hat, double gpr);

/// Serial reference shim: default execution, no warm resources. Sessions
/// that run many analyses should go through engine::Engine / engine::Study
/// instead, which keep one pool and one warm cache across calls.
[[nodiscard]] AnalysisResult analyze(const BemModel& model, const AnalysisOptions& options = {},
                                     PhaseReport* report = nullptr);

}  // namespace ebem::bem

// End-to-end grounding analysis: mesh -> Galerkin system -> leakage current
// -> design parameters (paper eq. 2.2).
//
// Solves with the normalized GPR V_Gamma = 1 (the paper notes this is not
// restrictive since everything is proportional to the GPR) and rescales the
// reported currents/potentials by the actual GPR.
#pragma once

#include <vector>

#include "src/bem/assembly.hpp"
#include "src/bem/solver.hpp"
#include "src/common/phase_report.hpp"

namespace ebem::bem {

struct AnalysisOptions {
  AssemblyOptions assembly;
  SolverOptions solver;
  double gpr = 1.0;  ///< Ground Potential Rise V_Gamma [V]
};

struct AnalysisResult {
  /// Nodal (linear basis) or per-element (constant basis) leakage current
  /// densities sigma_i [A/m] at the actual GPR.
  std::vector<double> sigma;
  double total_current = 0.0;          ///< I_Gamma [A]
  double equivalent_resistance = 0.0;  ///< R_eq = GPR / I_Gamma [Ohm]
  SolveStats solve_stats;
  std::vector<double> column_costs;    ///< forwarded from assembly, if measured
  CongruenceCacheStats cache_stats;    ///< forwarded from assembly (zeros if disabled)
};

/// Run the analysis. `report`, when provided, accumulates per-phase timings
/// for the Table 6.1 style breakdown (matrix generation vs solve vs rest).
[[nodiscard]] AnalysisResult analyze(const BemModel& model, const AnalysisOptions& options,
                                     PhaseReport* report = nullptr);

}  // namespace ebem::bem

#include "src/bem/pair_signature.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/hash.hpp"

namespace ebem::bem {

namespace {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

/// Degeneracy threshold [m] for choosing the canonical frame: vectors
/// shorter than this cannot define the rotation, components smaller than
/// this cannot pin the reflection. Far below any physical element length
/// or spacing, far above quantization noise — and a borderline choice is
/// only ever a missed hit, never a wrong one, because any frame built from
/// the actual geometry yields a faithful key.
constexpr double kFrameTol = 1e-9;

[[nodiscard]] std::int64_t quantize(double value, double quantum) {
  const double scaled = value / quantum;
  EBEM_EXPECT(std::abs(scaled) < 9.0e18, "coordinate overflows the congruence lattice; "
                                         "increase the congruence quantum");
  return std::llround(scaled);
}

}  // namespace

PairSignature make_pair_signature(const BemElement& field, const BemElement& source,
                                  double quantum) {
  EBEM_EXPECT(quantum > 0.0, "congruence quantum must be positive");

  // The pair's horizontal geometry is fully described by three 2D vectors:
  // field direction u, source direction v, field-start-to-source-start
  // offset w. (With the z coordinates kept verbatim this reconstructs all
  // four endpoints up to a horizontal rigid motion.)
  Vec2 u{field.b.x - field.a.x, field.b.y - field.a.y};
  Vec2 v{source.b.x - source.a.x, source.b.y - source.a.y};
  Vec2 w{source.a.x - field.a.x, source.a.y - field.a.y};
  Vec2* const vectors[3] = {&u, &v, &w};

  // Rotation: align the first non-degenerate vector with +x.
  for (Vec2* reference : vectors) {
    const double length = std::hypot(reference->x, reference->y);
    if (length <= kFrameTol) continue;
    const double c = reference->x / length;
    const double s = reference->y / length;
    for (Vec2* vec : vectors) {
      const double x = c * vec->x + s * vec->y;
      const double y = -s * vec->x + c * vec->y;
      vec->x = x;
      vec->y = y;
    }
    break;
  }

  // Reflection: flip y so the first off-axis vector points to y > 0.
  for (Vec2* reference : vectors) {
    if (std::abs(reference->y) <= kFrameTol) continue;
    if (reference->y < 0.0) {
      for (Vec2* vec : vectors) vec->y = -vec->y;
    }
    break;
  }

  PairSignature signature;
  signature.q = {
      quantize(u.x, quantum),          quantize(u.y, quantum),
      quantize(v.x, quantum),          quantize(v.y, quantum),
      quantize(w.x, quantum),          quantize(w.y, quantum),
      quantize(field.a.z, quantum),    quantize(field.b.z, quantum),
      quantize(source.a.z, quantum),   quantize(source.b.z, quantum),
      quantize(field.radius, quantum), quantize(source.radius, quantum),
      static_cast<std::int64_t>(field.layer) << 32 |
          static_cast<std::int64_t>(source.layer),
  };

  // Signed/unsigned variants of the same width may alias.
  signature.hash = hash_words(
      {reinterpret_cast<const std::uint64_t*>(signature.q.data()), signature.q.size()});
  return signature;
}

CanonicalPairSignature make_canonical_pair_signature(const BemElement& field,
                                                     const BemElement& source, double quantum) {
  CanonicalPairSignature canonical;
  canonical.signature = make_pair_signature(field, source, quantum);

  // Separation gate: midpoint distance over the longer element length. Both
  // quantities are invariant under the horizontal isometries and symmetric
  // under the role swap, so every member of a congruence class makes the
  // same choice. A borderline pair that lands on the other side of the gate
  // than a congruent copy merely misses a replay — never replays wrongly.
  const geom::Vec3 field_mid = 0.5 * (field.a + field.b);
  const geom::Vec3 source_mid = 0.5 * (source.a + source.b);
  const double separation = geom::distance(field_mid, source_mid);
  const double longest = std::max(field.length, source.length);
  if (!transpose_separated(separation, longest)) return canonical;

  // Both orientations are fully canonicalized and the smaller key wins.
  // This doubles the hashing work per well-separated lookup, but hashing is
  // orders of magnitude below one saved integration and the measured warm
  // assembly speedup rose (47x -> 61x on the bench grid) because the merged
  // classes eliminate far more misses than the extra canonicalization
  // costs. A cheaper swap-antisymmetric pre-order over per-element
  // invariants could halve this if signature hashing ever dominates.
  const PairSignature swapped = make_pair_signature(source, field, quantum);
  if (std::lexicographical_compare(swapped.q.begin(), swapped.q.end(),
                                   canonical.signature.q.begin(),
                                   canonical.signature.q.end())) {
    canonical.signature = swapped;
    canonical.transposed = true;
  }
  return canonical;
}

}  // namespace ebem::bem

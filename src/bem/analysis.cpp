#include "src/bem/analysis.hpp"

#include "src/common/error.hpp"
#include "src/common/timer.hpp"
#include "src/la/blas1.hpp"

namespace ebem::bem {

AnalysisResult analyze(const BemModel& model, const AnalysisOptions& options,
                       PhaseReport* report) {
  EBEM_EXPECT(options.gpr > 0.0, "GPR must be positive");
  AnalysisResult result;

  WallTimer wall;
  CpuTimer cpu;
  AssemblyResult system = assemble(model, options.assembly);
  if (report != nullptr) {
    report->add(Phase::kMatrixGeneration, wall.seconds(), cpu.seconds());
  }

  wall.reset();
  cpu.reset();
  // Normalized problem: R sigma_hat = nu with V_Gamma = 1.
  std::vector<double> sigma_hat =
      solve(system.matrix, system.rhs, options.solver, &result.solve_stats);
  if (report != nullptr) {
    report->add(Phase::kLinearSolve, wall.seconds(), cpu.seconds());
  }

  wall.reset();
  cpu.reset();
  // I_Gamma = integral of sigma over the electrodes = nu . sigma (eq. 2.2),
  // evaluated at the normalized GPR and rescaled.
  const double normalized_current = la::dot(system.rhs, sigma_hat);
  EBEM_ENSURE(normalized_current > 0.0, "non-positive total leakage current");
  result.equivalent_resistance = 1.0 / normalized_current;
  result.total_current = options.gpr * normalized_current;
  result.sigma = std::move(sigma_hat);
  la::scal(options.gpr, result.sigma);
  result.column_costs = std::move(system.column_costs);
  if (report != nullptr) {
    report->add(Phase::kResultsStorage, wall.seconds(), cpu.seconds());
  }
  return result;
}

}  // namespace ebem::bem

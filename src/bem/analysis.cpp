#include "src/bem/analysis.hpp"

#include "src/common/error.hpp"
#include "src/common/timer.hpp"
#include "src/la/blas1.hpp"

namespace ebem::bem {

AnalysisResult analyze(const BemModel& model, const AnalysisOptions& options,
                       const AnalysisExecution& execution, PhaseReport* report) {
  EBEM_EXPECT(options.gpr > 0.0, "GPR must be positive");
  AnalysisResult result;

  WallTimer wall;
  CpuTimer cpu;
  // A shared cache's stats are cumulative over its lifetime; snapshot them
  // so the report below can record this run's delta instead of re-adding
  // earlier runs' counts on every analyze() call.
  const CongruenceCacheStats cache_before =
      execution.assembly.cache != nullptr ? execution.assembly.cache->stats()
                                          : CongruenceCacheStats{};
  AssemblyResult system = assemble(model, options.assembly, execution.assembly);
  result.cache_stats = system.cache_stats;
  if (report != nullptr) {
    report->add(Phase::kMatrixGeneration, wall.seconds(), cpu.seconds());
    if (execution.assembly.cache != nullptr) {
      // Raw additive counters only — a hit *rate* would not accumulate
      // meaningfully across repeated analyze() calls into one report.
      const CongruenceCacheStats delta = system.cache_stats.delta_since(cache_before);
      report->add_counter(kCacheHitsCounter, static_cast<double>(delta.hits));
      report->add_counter(kCacheMissesCounter, static_cast<double>(delta.misses));
    }
  }

  wall.reset();
  cpu.reset();
  // Normalized problem: R sigma_hat = nu with V_Gamma = 1.
  std::vector<double> sigma_hat =
      solve(system.matrix, system.rhs, execution.solver, execution.solve, &result.solve_stats);
  // Snapshot after the solve: the matrix store keeps paging through the
  // factor copy-in and the residual matvec, not just through assembly.
  result.matrix_tiles = system.matrix.tile_stats();
  if (report != nullptr) {
    report->add(Phase::kLinearSolve, wall.seconds(), cpu.seconds());
  }

  wall.reset();
  cpu.reset();
  // I_Gamma = integral of sigma over the electrodes = nu . sigma (eq. 2.2),
  // evaluated at the normalized GPR and rescaled.
  const double normalized_current = la::dot(system.rhs, sigma_hat);
  EBEM_ENSURE(normalized_current > 0.0, "non-positive total leakage current");
  result.equivalent_resistance = 1.0 / normalized_current;
  result.total_current = options.gpr * normalized_current;
  result.sigma = std::move(sigma_hat);
  la::scal(options.gpr, result.sigma);
  result.column_costs = std::move(system.column_costs);
  if (report != nullptr) {
    report->add(Phase::kResultsStorage, wall.seconds(), cpu.seconds());
  }
  return result;
}

AnalysisResult analyze(const BemModel& model, const AnalysisOptions& options,
                       PhaseReport* report) {
  return analyze(model, options, AnalysisExecution{}, report);
}

}  // namespace ebem::bem

#include "src/bem/analysis.hpp"

#include "src/common/error.hpp"
#include "src/common/timer.hpp"
#include "src/la/blas1.hpp"

namespace ebem::bem {

AnalysisResult finish_analysis(AssemblyResult system, std::vector<double> sigma_hat,
                               double gpr) {
  AnalysisResult result;
  result.cache_stats = system.cache_stats;
  // Snapshot after the solve: the matrix store keeps paging through the
  // factor copy-in and the residual matvec, not just through assembly.
  result.matrix_tiles = system.matrix.tile_stats();
  result.compression = system.compression;
  result.far_field = system.far_field;
  result.ordering_stats = system.ordering_stats;
  // I_Gamma = integral of sigma over the electrodes = nu . sigma (eq. 2.2),
  // evaluated at the normalized GPR and rescaled.
  const double normalized_current = la::dot(system.rhs, sigma_hat);
  EBEM_ENSURE(normalized_current > 0.0, "non-positive total leakage current");
  result.equivalent_resistance = 1.0 / normalized_current;
  result.total_current = gpr * normalized_current;
  result.sigma = std::move(sigma_hat);
  la::scal(gpr, result.sigma);
  result.column_costs = std::move(system.column_costs);
  return result;
}

AnalysisResult analyze(const BemModel& model, const AnalysisOptions& options,
                       const AnalysisExecution& execution, PhaseReport* report) {
  EBEM_EXPECT(options.gpr > 0.0, "GPR must be positive");

  WallTimer wall;
  CpuTimer cpu;
  AssemblyResult system = assemble(model, options.assembly, execution.assembly);
  if (report != nullptr) {
    report->add(Phase::kMatrixGeneration, wall.seconds(), cpu.seconds());
    if (execution.assembly.cache != nullptr) {
      // Raw additive counters only — a hit *rate* would not accumulate
      // meaningfully across repeated analyze() calls into one report. The
      // assembly tallies its own lookups, so this is this run's delta even
      // when the cache is shared across concurrent runs.
      report->add_counter(kCacheHitsCounter, static_cast<double>(system.cache_stats.hits));
      report->add_counter(kCacheMissesCounter, static_cast<double>(system.cache_stats.misses));
    }
  }

  wall.reset();
  cpu.reset();
  // Normalized problem: R sigma_hat = nu with V_Gamma = 1. The matrix may be
  // stored under a geometric DoF ordering; the solve handles the gather/
  // scatter at its boundary, so sigma_hat comes back in external order.
  SolveStats solve_stats;
  SolveExecution solve_execution = execution.solve;
  solve_execution.ordering = system.ordering.get();
  std::vector<double> sigma_hat =
      solve(system.matrix, system.rhs, execution.solver, solve_execution, &solve_stats);
  if (report != nullptr) {
    report->add(Phase::kLinearSolve, wall.seconds(), cpu.seconds());
  }

  wall.reset();
  cpu.reset();
  AnalysisResult result = finish_analysis(std::move(system), std::move(sigma_hat), options.gpr);
  result.solve_stats = solve_stats;
  if (report != nullptr) {
    report->add(Phase::kResultsStorage, wall.seconds(), cpu.seconds());
  }
  return result;
}

AnalysisResult analyze(const BemModel& model, const AnalysisOptions& options,
                       PhaseReport* report) {
  return analyze(model, options, AnalysisExecution{}, report);
}

}  // namespace ebem::bem

#include "src/bem/analysis.hpp"

#include <optional>

#include "src/common/error.hpp"
#include "src/common/timer.hpp"
#include "src/la/blas1.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::bem {

AnalysisResult analyze(const BemModel& model, const AnalysisOptions& options,
                       PhaseReport* report) {
  EBEM_EXPECT(options.gpr > 0.0, "GPR must be positive");
  AnalysisResult result;

  // One worker pool is shared by the assembly and solve phases instead of
  // each phase spawning (and joining) its own threads. Sharing only applies
  // when both phases request the same worker count — a supplied pool's size
  // takes precedence inside each phase, so handing a bigger shared pool to
  // the smaller phase would silently override its num_threads.
  AnalysisOptions run = options;
  std::optional<par::ThreadPool> pool;
  const bool assembly_wants = run.assembly.pool == nullptr && run.assembly.num_threads > 1 &&
                              run.assembly.backend == Backend::kThreadPool;
  const bool solver_wants = run.solver.pool == nullptr && run.solver.num_threads > 1;
  if (assembly_wants && solver_wants &&
      run.assembly.num_threads == run.solver.num_threads) {
    pool.emplace(run.assembly.num_threads);
    run.assembly.pool = &*pool;
    run.solver.pool = &*pool;
  }

  WallTimer wall;
  CpuTimer cpu;
  // An external cache's stats are cumulative over its lifetime; snapshot
  // them so the report below can record this run's delta instead of
  // re-adding earlier runs' counts on every analyze() call.
  const CongruenceCacheStats cache_before =
      run.assembly.congruence_cache != nullptr ? run.assembly.congruence_cache->stats()
                                               : CongruenceCacheStats{};
  AssemblyResult system = assemble(model, run.assembly);
  result.cache_stats = system.cache_stats;
  if (report != nullptr) {
    report->add(Phase::kMatrixGeneration, wall.seconds(), cpu.seconds());
    if (run.assembly.use_congruence_cache || run.assembly.congruence_cache != nullptr) {
      // Raw additive counters only — a hit *rate* would not accumulate
      // meaningfully across repeated analyze() calls into one report.
      report->add_counter("Congruence cache hits",
                          static_cast<double>(system.cache_stats.hits - cache_before.hits));
      report->add_counter("Congruence cache misses",
                          static_cast<double>(system.cache_stats.misses - cache_before.misses));
    }
  }

  wall.reset();
  cpu.reset();
  // Normalized problem: R sigma_hat = nu with V_Gamma = 1.
  std::vector<double> sigma_hat =
      solve(system.matrix, system.rhs, run.solver, &result.solve_stats);
  if (report != nullptr) {
    report->add(Phase::kLinearSolve, wall.seconds(), cpu.seconds());
  }

  wall.reset();
  cpu.reset();
  // I_Gamma = integral of sigma over the electrodes = nu . sigma (eq. 2.2),
  // evaluated at the normalized GPR and rescaled.
  const double normalized_current = la::dot(system.rhs, sigma_hat);
  EBEM_ENSURE(normalized_current > 0.0, "non-positive total leakage current");
  result.equivalent_resistance = 1.0 / normalized_current;
  result.total_current = options.gpr * normalized_current;
  result.sigma = std::move(sigma_hat);
  la::scal(options.gpr, result.sigma);
  result.column_costs = std::move(system.column_costs);
  if (report != nullptr) {
    report->add(Phase::kResultsStorage, wall.seconds(), cpu.seconds());
  }
  return result;
}

}  // namespace ebem::bem

#include "src/bem/solver.hpp"

#include "src/common/error.hpp"
#include "src/la/blas1.hpp"
#include "src/la/cg.hpp"
#include "src/la/cholesky.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::bem {

std::vector<double> solve(const la::SymMatrix& matrix, std::span<const double> rhs,
                          const SolverOptions& options, const SolveExecution& execution,
                          SolveStats* stats) {
  if (execution.ordering != nullptr) {
    // Permutation boundary: gather the external-order rhs into the matrix's
    // internal order, run the plain solve there (residuals and iteration
    // counts are permutation-invariant), scatter the solution back.
    EBEM_EXPECT(execution.ordering->size() == rhs.size(),
                "SolveExecution::ordering does not match the system size");
    const std::vector<double> internal_rhs = execution.ordering->gather(rhs);
    SolveExecution internal_execution = execution;
    internal_execution.ordering = nullptr;
    return execution.ordering->scatter(
        solve(matrix, internal_rhs, options, internal_execution, stats));
  }
  par::ThreadPool* pool =
      (execution.pool != nullptr && execution.pool->num_threads() > 1) ? execution.pool
                                                                       : nullptr;

  if (options.kind == SolverKind::kCholesky) {
    // The factor's working store inherits the matrix's storage policy, so a
    // spill-backed system factors out of core with the same budget.
    const la::Cholesky factor(matrix, {.block = execution.cholesky_block, .pool = pool});
    std::vector<double> x = factor.solve(rhs);
    if (stats != nullptr) {
      stats->iterations = 0;
      stats->factor_tiles = factor.tile_stats();
      if (execution.measure_residual) {
        // Report the achieved residual for parity with the iterative path.
        std::vector<double> r(rhs.begin(), rhs.end());
        std::vector<double> ax(rhs.size());
        matrix.multiply(x, ax, pool, execution.matvec_parallel_cutoff);
        la::axpy(-1.0, ax, r);
        const double b_norm = la::nrm2(rhs);
        stats->relative_residual = b_norm > 0.0 ? la::nrm2(r) / b_norm : 0.0;
      }
    }
    return x;
  }

  la::CgOptions cg_options;
  cg_options.tolerance = options.cg_tolerance;
  cg_options.max_iterations = options.cg_max_iterations;
  cg_options.pool = pool;
  cg_options.parallel_cutoff = execution.matvec_parallel_cutoff;
  la::CgResult result = la::conjugate_gradient(matrix, rhs, cg_options);
  EBEM_EXPECT(result.converged, "PCG failed to converge");
  if (stats != nullptr) {
    stats->iterations = result.iterations;
    stats->relative_residual = result.relative_residual;
  }
  return std::move(result.x);
}

std::vector<double> solve(const la::SymMatrix& matrix, std::span<const double> rhs,
                          const SolverOptions& options, SolveStats* stats) {
  return solve(matrix, rhs, options, SolveExecution{}, stats);
}

}  // namespace ebem::bem

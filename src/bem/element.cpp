#include "src/bem/element.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace ebem::bem {

std::vector<geom::Conductor> split_at_interfaces(const std::vector<geom::Conductor>& conductors,
                                                 const soil::LayeredSoil& soil) {
  std::vector<geom::Conductor> result;
  result.reserve(conductors.size());
  for (const geom::Conductor& c : conductors) {
    // Collect split parameters where the conductor crosses an interface.
    std::vector<double> cuts{0.0, 1.0};
    const double dz = c.b.z - c.a.z;
    if (std::abs(dz) > 1e-12) {
      for (std::size_t i = 0; i + 1 < soil.layer_count(); ++i) {
        const double z_interface = -soil.interface_depth(i);
        const double t = (z_interface - c.a.z) / dz;
        if (t > 1e-9 && t < 1.0 - 1e-9) cuts.push_back(t);
      }
    }
    std::sort(cuts.begin(), cuts.end());
    for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
      const geom::Vec3 p0 = c.a + cuts[k] * (c.b - c.a);
      const geom::Vec3 p1 = c.a + cuts[k + 1] * (c.b - c.a);
      result.push_back({p0, p1, c.radius});
    }
  }
  return result;
}

BemModel::BemModel(const geom::Mesh& mesh, const soil::LayeredSoil& soil)
    : node_count_(mesh.node_count()), soil_(soil) {
  EBEM_EXPECT(mesh.element_count() > 0, "model needs at least one element");
  elements_.reserve(mesh.element_count());
  for (const geom::MeshElement& e : mesh.elements()) {
    EBEM_EXPECT(e.a.z < 0.0 && e.b.z < 0.0, "electrodes must be buried (z < 0)");
    BemElement element;
    element.a = e.a;
    element.b = e.b;
    element.radius = e.radius;
    element.length = e.length();
    element.node_a = e.node_a;
    element.node_b = e.node_b;
    element.layer = soil.layer_of(0.5 * (e.a.z + e.b.z));
    // Elements must not straddle an interface (callers run
    // split_at_interfaces on the conductors before meshing).
    EBEM_EXPECT(soil.layer_of(e.a.z + 1e-9 * (e.b.z - e.a.z)) == element.layer &&
                    soil.layer_of(e.b.z - 1e-9 * (e.b.z - e.a.z)) == element.layer,
                "element crosses a soil interface; split conductors first");
    elements_.push_back(element);
  }
}

std::size_t BemModel::global_dof(BasisKind basis, std::size_t element, std::size_t local) const {
  const BemElement& e = elements_[element];
  if (basis == BasisKind::kLinear) {
    return local == 0 ? e.node_a : e.node_b;
  }
  return element;
}

}  // namespace ebem::bem

// Thread-safe cache of elemental Galerkin blocks keyed by the pair's
// congruence signature — the subsystem that lets assembly integrate each
// distinct pair geometry once and replay the 2x2 block for every congruent
// copy (uniform rectangular grids repeat a handful of geometries tens of
// thousands of times; see pair_signature.hpp for the invariance argument).
//
// Concurrency model matches the fused streaming assembly: a read-mostly
// sharded hash map. Signatures are distributed over 64 independently locked
// shards by their high hash bits, so concurrent workers contend only when
// they touch the same shard at the same instant; after warm-up nearly every
// access is a brief locked find. Two workers racing on the same cold key may
// both integrate it — both results are identical, the second insert is
// dropped, and correctness is unaffected.
//
// A cache is valid for one kernel + integrator configuration: reuse it
// across assemblies only when soil model, series/quadrature options and
// basis are unchanged (congruent geometry alone does not pin the physics).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "src/bem/integrator.hpp"
#include "src/bem/pair_signature.hpp"

namespace ebem::bem {

/// Hit/miss/occupancy counters; cumulative over the cache's lifetime.
struct CongruenceCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;  ///< distinct blocks stored

  [[nodiscard]] double hit_rate() const {
    const std::size_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }

  /// Counters accumulated since `before` was snapshotted from the same
  /// cache — the per-run delta every session consumer (Study, Report,
  /// design ladder, warm bench) reports. Saturates at zero instead of
  /// wrapping if the counters were reset (clear()) between the snapshots;
  /// `entries` is the current occupancy, not a difference.
  [[nodiscard]] CongruenceCacheStats delta_since(const CongruenceCacheStats& before) const {
    const auto sub = [](std::size_t now, std::size_t then) {
      return now >= then ? now - then : std::size_t{0};
    };
    return {.hits = sub(hits, before.hits),
            .misses = sub(misses, before.misses),
            .entries = entries};
  }
};

class CongruenceCache {
 public:
  /// Occupancy cap: on pathological (fully graded) grids nearly every pair
  /// is a distinct class, and an uncapped map would shadow the O(M^2) pair
  /// count in memory; past the cap lookups keep hitting existing entries
  /// but misses stop inserting.
  static constexpr std::size_t kDefaultMaxEntries = 1u << 20;

  explicit CongruenceCache(double quantum = kDefaultCongruenceQuantum,
                           std::size_t max_entries = kDefaultMaxEntries);
  CongruenceCache(const CongruenceCache&) = delete;
  CongruenceCache& operator=(const CongruenceCache&) = delete;

  [[nodiscard]] double quantum() const { return quantum_; }

  /// On a hit copies the stored block into `block` and returns true (counts
  /// a hit); on a miss returns false (counts a miss).
  [[nodiscard]] bool lookup(const PairSignature& signature, LocalMatrix& block) const;

  /// Store the block for `signature`; a concurrent duplicate or a full
  /// cache is silently dropped.
  void insert(const PairSignature& signature, const LocalMatrix& block);

  /// Role-canonical variants: blocks are stored in the canonical (field,
  /// source) orientation, so a transposed signature transposes the block on
  /// the way in and back out — one entry serves both orientations of a
  /// congruence class (field/source transpose reciprocity).
  [[nodiscard]] bool lookup(const CanonicalPairSignature& signature, LocalMatrix& block) const;
  void insert(const CanonicalPairSignature& signature, const LocalMatrix& block);

  [[nodiscard]] CongruenceCacheStats stats() const;

  /// Drop all stored blocks but keep the lifetime hit/miss counters, so
  /// before/after deltas taken around the drop stay monotonic — what the
  /// Engine's physics-fingerprint guard needs when the soil or integrator
  /// options change mid-session.
  void drop_entries();

  /// Drop all entries and reset the counters (full cold start).
  void clear();

 private:
  static constexpr std::size_t kShards = 64;
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::unordered_map<PairSignature, LocalMatrix, PairSignatureHash> map;
  };

  /// High hash bits pick the shard; the map's bucket index uses the low
  /// bits, so shard choice and bucket spread stay independent.
  [[nodiscard]] const Shard& shard_of(const PairSignature& signature) const {
    return shards_[signature.hash >> 58];
  }
  [[nodiscard]] Shard& shard_of(const PairSignature& signature) {
    return shards_[signature.hash >> 58];
  }

  double quantum_;
  std::size_t max_entries_;
  std::array<Shard, kShards> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> entries_{0};
};

}  // namespace ebem::bem

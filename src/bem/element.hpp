// Boundary elements and the BEM discretization model.
//
// The approximated 1D approach (paper §4.2): the thin-wire hypothesis
// restricts trial/test functions to circumferential uniformity, so only the
// conductor axes are discretized. The unknown is the leakage current per
// unit axial length sigma(s) [A/m]; with trial functions N_i,
// sigma = sum_i sigma_i N_i (paper eq. 4.1).
#pragma once

#include <cstddef>
#include <vector>

#include "src/geom/conductor.hpp"
#include "src/geom/mesh.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::bem {

/// Trial/test function family (paper §4.2 selects Galerkin; we also carry a
/// constant basis as the simpler baseline).
enum class BasisKind {
  kConstant,  ///< one DoF per element, piecewise-constant leakage
  kLinear,    ///< one DoF per node, hat functions spanning adjacent elements
};

/// A straight boundary element with its precomputed soil layer.
struct BemElement {
  geom::Vec3 a;
  geom::Vec3 b;
  double radius = 0.0;
  double length = 0.0;
  std::size_t node_a = 0;
  std::size_t node_b = 0;
  std::size_t layer = 0;  ///< soil layer containing the whole element
};

/// Split conductors at soil-layer interfaces so that every conductor (and
/// therefore every element) lies entirely within one layer. Needed for
/// grids whose rods cross the interface (Balaidós soil model C).
[[nodiscard]] std::vector<geom::Conductor> split_at_interfaces(
    const std::vector<geom::Conductor>& conductors, const soil::LayeredSoil& soil);

/// The discretized BEM model: elements with layer tags plus DoF bookkeeping.
class BemModel {
 public:
  BemModel(const geom::Mesh& mesh, const soil::LayeredSoil& soil);

  [[nodiscard]] const std::vector<BemElement>& elements() const { return elements_; }
  [[nodiscard]] std::size_t element_count() const { return elements_.size(); }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] std::size_t dof_count(BasisKind basis) const {
    return basis == BasisKind::kLinear ? node_count_ : elements_.size();
  }
  [[nodiscard]] const soil::LayeredSoil& soil() const { return soil_; }

  /// Degrees of freedom carried by one element (its own DoF for constant
  /// basis; its two endpoint nodes for linear basis).
  [[nodiscard]] std::size_t local_dof_count(BasisKind basis) const {
    return basis == BasisKind::kLinear ? 2 : 1;
  }
  [[nodiscard]] std::size_t global_dof(BasisKind basis, std::size_t element,
                                       std::size_t local) const;

 private:
  std::vector<BemElement> elements_;
  std::size_t node_count_ = 0;
  soil::LayeredSoil soil_;
};

}  // namespace ebem::bem

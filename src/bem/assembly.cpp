#include "src/bem/assembly.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <optional>

#include "src/bem/far_field.hpp"
#include "src/common/error.hpp"
#include "src/common/timer.hpp"
#include "src/la/compressed_tile_store.hpp"
#include "src/parallel/openmp_backend.hpp"
#include "src/soil/kernel_factory.hpp"
#include "src/parallel/parallel_for.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::bem {

namespace {

/// Concurrent accumulation view of the tiled symmetric matrix: each add
/// locks the lock of the *tile* holding the entry (tile ids beyond the lock
/// array share locks by modulus, which only ever over-serializes). An
/// elemental 2x2 block maps to at most four tiles, and with the
/// element-pair integration costing orders of magnitude more than the
/// scatter, contention is negligible. Entry writes go through
/// SymMatrix::add, so the same path drives the in-memory arena and the
/// out-of-core spill pager (whose own pin bookkeeping is thread-safe; the
/// tile lock makes the read-modify-write of the entry atomic).
class TileLockedMatrix {
 public:
  explicit TileLockedMatrix(la::SymMatrix& matrix) : matrix_(matrix) {}

  void add(std::size_t j, std::size_t i, double value) {
    const la::TileLayout& layout = matrix_.layout();
    const std::size_t hi = std::max(i, j);
    const std::size_t lo = std::min(i, j);
    const std::size_t tile = layout.tile_index(layout.tile_of(hi), layout.tile_of(lo));
    const std::scoped_lock lock(locks_[tile % kLocks].mutex);
    matrix_.add(hi, lo, value);
  }

 private:
  static constexpr std::size_t kLocks = 256;
  struct alignas(64) Lock {
    std::mutex mutex;
  };

  la::SymMatrix& matrix_;
  std::array<Lock, kLocks> locks_;
};

/// Scatter one elemental block into the global symmetric matrix.
///
/// Only the element-pair triangle beta <= alpha is computed; the reversed
/// ordered pair (alpha as test, beta as trial) is the transpose by kernel
/// reciprocity. Packed symmetric storage holds the *value* F(j, i) of the
/// full matrix, so:
///  * self pairs (beta == alpha): the (symmetrized) block is scattered over
///    its local upper triangle only — each unordered global pair once;
///  * cross pairs: each (p, q) combination maps to a distinct unordered
///    global pair, except when the elements share a node and j == i, where
///    both the pair and its transpose hit the same diagonal entry — that
///    contribution enters twice.
///
/// `Sink` is either the bare SymMatrix (sequential path) or a
/// TileLockedMatrix (fused streaming path); both expose add-compatible
/// entry access.
template <typename Sink>
void scatter(const BemModel& model, BasisKind basis, std::size_t beta, std::size_t alpha,
             const LocalMatrix& local, Sink&& add) {
  const std::size_t locals = model.local_dof_count(basis);
  if (beta == alpha) {
    for (std::size_t p = 0; p < locals; ++p) {
      const std::size_t j = model.global_dof(basis, beta, p);
      for (std::size_t q = p; q < locals; ++q) {
        const std::size_t i = model.global_dof(basis, alpha, q);
        // Symmetrize: the analytic-inner/Gauss-outer split introduces a tiny
        // quadrature-level asymmetry the Galerkin form does not have.
        add(j, i, 0.5 * (local.value[p][q] + local.value[q][p]));
      }
    }
    return;
  }
  for (std::size_t p = 0; p < locals; ++p) {
    const std::size_t j = model.global_dof(basis, beta, p);
    for (std::size_t q = 0; q < locals; ++q) {
      const std::size_t i = model.global_dof(basis, alpha, q);
      add(j, i, (j == i) ? 2.0 * local.value[p][q] : local.value[p][q]);
    }
  }
}

std::vector<double> build_rhs(const BemModel& model, BasisKind basis) {
  std::vector<double> rhs(model.dof_count(basis), 0.0);
  for (std::size_t e = 0; e < model.element_count(); ++e) {
    const BemElement& element = model.elements()[e];
    if (basis == BasisKind::kLinear) {
      // integral of each hat over the element is L/2.
      rhs[element.node_a] += 0.5 * element.length;
      rhs[element.node_b] += 0.5 * element.length;
    } else {
      rhs[e] = element.length;
    }
  }
  return rhs;
}

}  // namespace

AssemblyResult assemble(const BemModel& model, const AssemblyOptions& options,
                        const AssemblyExecution& execution) {
  EBEM_EXPECT(execution.num_threads >= 1, "need at least one thread");
  const BasisKind basis = options.integrator.basis;
  const std::size_t m = model.element_count();
  const std::size_t n = model.dof_count(basis);

  const std::unique_ptr<soil::PointKernel> kernel =
      soil::make_kernel(model.soil(), options.series, options.hankel);
  IntegratorOptions integrator_options = options.integrator;
  if (model.soil().layer_count() > 2) {
    // No closed-form images beyond two layers: generic quadrature of the
    // spectral kernel (the paper's "un-admissible" cost regime, §4.2).
    integrator_options.inner = InnerIntegration::kSubtracted;
  }
  const Integrator integrator(*kernel, integrator_options);
  const auto& elements = model.elements();

  AssemblyResult result;
  // Geometric ordering: cluster the DoFs before the matrix exists, so tile
  // rows of the store land on the RCB leaf clusters. The permutation is the
  // matrix boundary — entries scatter through it below, while result.rhs
  // (and every caller-visible vector) stays in external order.
  if (execution.storage.compression.ordering == la::DofOrdering::kGeometric) {
    GeometricOrdering geometric =
        geometric_ordering(model, basis, execution.storage.tile_size);
    result.ordering_stats = geometric.stats;
    result.ordering =
        std::make_shared<const la::Permutation>(std::move(geometric.permutation));
  }
  const la::Permutation* perm = result.ordering.get();
  const auto internal_dof = [perm](std::size_t dof) {
    return perm != nullptr ? perm->to_internal(dof) : dof;
  };
  result.matrix = la::SymMatrix(n, execution.storage);
  result.rhs = build_rhs(model, basis);
  result.element_pairs = m * (m + 1) / 2;

  // Congruence cache: referenced, never owned — a null cache means the
  // cached element_pair overload degenerates to the plain computation.
  // Hits/misses are tallied here, per run: the cache's own counters span
  // its whole lifetime across every (possibly concurrent) run sharing it,
  // so they cannot attribute lookups to this assembly. One relaxed
  // fetch_add per pair is noise next to the pair integration itself.
  CongruenceCache* cache = execution.cache;
  std::atomic<std::size_t> tally_hits{0};
  std::atomic<std::size_t> tally_misses{0};
  const auto finalize_stats = [&] {
    if (cache != nullptr) {
      result.cache_stats.hits = tally_hits.load(std::memory_order_relaxed);
      result.cache_stats.misses = tally_misses.load(std::memory_order_relaxed);
      result.cache_stats.entries = cache->stats().entries;
    }
    result.matrix_tiles = result.matrix.tile_stats();
  };
  const auto tally = [&](bool hit) {
    if (cache == nullptr) return;
    (hit ? tally_hits : tally_misses).fetch_add(1, std::memory_order_relaxed);
  };

  const bool sequential = execution.num_threads == 1 && execution.pool == nullptr &&
                          !execution.measure_column_costs;

  // Worker pool, hoisted ahead of the pair loop so the far-field builder can
  // share it. The sequential path and the OpenMP backend own no pool.
  std::optional<par::ThreadPool> owned_pool;
  par::ThreadPool* pool = execution.pool;
  if (pool == nullptr && execution.backend == Backend::kThreadPool && !sequential) {
    owned_pool.emplace(execution.num_threads);
    pool = &*owned_pool;
  }

  // --- far-field compression ---------------------------------------------
  // With compression enabled the matrix store is the low-rank backend:
  // partition the tile square, build the admissible blocks by ACA (their
  // entries are the *full* Galerkin sums over incident element pairs), then
  // run the usual pair loop with two filters — pairs whose every entry lands
  // in a covered tile are skipped outright (the O(M^2) win), and scatter
  // drops the covered entries of partially covered pairs (already inside a
  // factor; writing them would both double-count and hit read-only tiles).
  la::CompressedTileStore* compressed = nullptr;
  const la::TileLayout& layout = result.matrix.layout();
  if (execution.storage.compression.enabled()) {
    compressed = dynamic_cast<la::CompressedTileStore*>(&result.matrix.store());
    EBEM_ENSURE(compressed != nullptr,
                "compression-enabled storage must be backed by a CompressedTileStore");
    const FarFieldPartition partition =
        partition_far_field(model, basis, layout, execution.storage.compression, perm);
    par::ThreadPool* build_pool = execution.backend == Backend::kThreadPool ? pool : nullptr;
    build_far_field(*compressed, model, basis, integrator, partition, build_pool,
                    result.far_field, perm, cache);
  }
  // Takes *internal* (storage-order) indices — callers map through the
  // permutation first, exactly once per entry.
  const auto entry_is_far = [&](std::size_t j, std::size_t i) {
    const std::size_t hi = std::max(i, j);
    const std::size_t lo = std::min(i, j);
    return compressed->tile_is_low_rank(layout.tile_of(hi), layout.tile_of(lo));
  };
  const std::size_t locals = model.local_dof_count(basis);
  const auto pair_is_far = [&](std::size_t beta, std::size_t alpha) {
    if (compressed == nullptr) return false;
    for (std::size_t p = 0; p < locals; ++p) {
      const std::size_t j = internal_dof(model.global_dof(basis, beta, p));
      for (std::size_t q = 0; q < locals; ++q) {
        if (!entry_is_far(j, internal_dof(model.global_dof(basis, alpha, q)))) return false;
      }
    }
    return true;
  };
  std::atomic<std::size_t> pairs_skipped{0};
  const auto finalize_compression = [&] {
    if (compressed == nullptr) return;
    result.compression = compressed->compression_stats();
    result.far_field.pairs_skipped = pairs_skipped.load(std::memory_order_relaxed);
    result.far_field.pairs_near = result.element_pairs - result.far_field.pairs_skipped;
  };

  if (sequential) {
    // Original sequential scheme: compute and assemble inside the loop.
    for (std::size_t beta = 0; beta < m; ++beta) {
      for (std::size_t alpha = beta; alpha < m; ++alpha) {
        if (pair_is_far(beta, alpha)) {
          pairs_skipped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        bool hit = false;
        const LocalMatrix local =
            integrator.element_pair(elements[beta], elements[alpha], cache, &hit);
        tally(hit);
        scatter(model, basis, beta, alpha, local, [&](std::size_t j, std::size_t i, double v) {
          const std::size_t jj = internal_dof(j);
          const std::size_t ii = internal_dof(i);
          if (compressed != nullptr && entry_is_far(jj, ii)) return;
          result.matrix.add(jj, ii, v);
        });
      }
    }
    finalize_compression();
    finalize_stats();
    return result;
  }

  // Fused streaming scheme: each worker computes an elemental matrix and
  // immediately accumulates it into the global matrix through the per-tile
  // locks — no per-pair storage, no serial scatter pass. With one thread
  // this degenerates to the sequential order, so timing-only runs
  // (measure_column_costs) stay bitwise identical to the sequential path.
  TileLockedMatrix striped(result.matrix);
  const auto fused_pair = [&](std::size_t beta, std::size_t alpha) {
    if (pair_is_far(beta, alpha)) {
      pairs_skipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    bool hit = false;
    const LocalMatrix local =
        integrator.element_pair(elements[beta], elements[alpha], cache, &hit);
    tally(hit);
    scatter(model, basis, beta, alpha, local, [&](std::size_t j, std::size_t i, double v) {
      const std::size_t jj = internal_dof(j);
      const std::size_t ii = internal_dof(i);
      if (compressed != nullptr && entry_is_far(jj, ii)) return;
      striped.add(jj, ii, v);
    });
  };
  if (execution.measure_column_costs) result.column_costs.assign(m, 0.0);

  const auto run_loop = [&](std::size_t count, const auto& body) {
    if (execution.backend == Backend::kOpenMp) {
      par::openmp_parallel_for(execution.num_threads, count, execution.schedule, body);
    } else {
      par::parallel_for(*pool, count, execution.schedule, body);
    }
  };

  if (execution.loop == ParallelLoop::kOuter) {
    run_loop(m, [&](std::size_t beta) {
      WallTimer timer;
      for (std::size_t alpha = beta; alpha < m; ++alpha) fused_pair(beta, alpha);
      if (!result.column_costs.empty()) result.column_costs[beta] = timer.seconds();
    });
  } else {
    for (std::size_t beta = 0; beta < m; ++beta) {
      WallTimer timer;
      const std::size_t rows = m - beta;
      run_loop(rows, [&](std::size_t r) { fused_pair(beta, beta + r); });
      if (!result.column_costs.empty()) result.column_costs[beta] = timer.seconds();
    }
  }
  finalize_compression();
  finalize_stats();
  return result;
}

}  // namespace ebem::bem

#include "src/bem/assembly.hpp"

#include <algorithm>
#include <array>
#include <mutex>
#include <optional>

#include "src/common/error.hpp"
#include "src/common/timer.hpp"
#include "src/parallel/openmp_backend.hpp"
#include "src/soil/kernel_factory.hpp"
#include "src/parallel/parallel_for.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::bem {

namespace {

/// Concurrent accumulation view of the packed symmetric matrix: rows are
/// hashed onto a fixed array of stripe locks. Scatters of one elemental
/// block touch at most four entries on adjacent rows, so they almost always
/// take a single lock; with the element-pair integration costing orders of
/// magnitude more than the scatter, contention is negligible.
class StripedMatrix {
 public:
  explicit StripedMatrix(la::SymMatrix& matrix)
      : matrix_(matrix),
        rows_per_stripe_(std::max<std::size_t>(
            1, (matrix.size() + kStripes - 1) / kStripes)) {}

  void add(std::size_t j, std::size_t i, double value) {
    const std::size_t stripe = std::max(i, j) / rows_per_stripe_;
    const std::scoped_lock lock(stripes_[stripe].mutex);
    matrix_(j, i) += value;
  }

 private:
  static constexpr std::size_t kStripes = 64;
  struct alignas(64) Stripe {
    std::mutex mutex;
  };

  la::SymMatrix& matrix_;
  std::size_t rows_per_stripe_;
  std::array<Stripe, kStripes> stripes_;
};

/// Scatter one elemental block into the global symmetric matrix.
///
/// Only the element-pair triangle beta <= alpha is computed; the reversed
/// ordered pair (alpha as test, beta as trial) is the transpose by kernel
/// reciprocity. Packed symmetric storage holds the *value* F(j, i) of the
/// full matrix, so:
///  * self pairs (beta == alpha): the (symmetrized) block is scattered over
///    its local upper triangle only — each unordered global pair once;
///  * cross pairs: each (p, q) combination maps to a distinct unordered
///    global pair, except when the elements share a node and j == i, where
///    both the pair and its transpose hit the same diagonal entry — that
///    contribution enters twice.
///
/// `Sink` is either the bare SymMatrix (sequential path) or a StripedMatrix
/// (fused streaming path); both expose add-compatible entry access.
template <typename Sink>
void scatter(const BemModel& model, BasisKind basis, std::size_t beta, std::size_t alpha,
             const LocalMatrix& local, Sink&& add) {
  const std::size_t locals = model.local_dof_count(basis);
  if (beta == alpha) {
    for (std::size_t p = 0; p < locals; ++p) {
      const std::size_t j = model.global_dof(basis, beta, p);
      for (std::size_t q = p; q < locals; ++q) {
        const std::size_t i = model.global_dof(basis, alpha, q);
        // Symmetrize: the analytic-inner/Gauss-outer split introduces a tiny
        // quadrature-level asymmetry the Galerkin form does not have.
        add(j, i, 0.5 * (local.value[p][q] + local.value[q][p]));
      }
    }
    return;
  }
  for (std::size_t p = 0; p < locals; ++p) {
    const std::size_t j = model.global_dof(basis, beta, p);
    for (std::size_t q = 0; q < locals; ++q) {
      const std::size_t i = model.global_dof(basis, alpha, q);
      add(j, i, (j == i) ? 2.0 * local.value[p][q] : local.value[p][q]);
    }
  }
}

std::vector<double> build_rhs(const BemModel& model, BasisKind basis) {
  std::vector<double> rhs(model.dof_count(basis), 0.0);
  for (std::size_t e = 0; e < model.element_count(); ++e) {
    const BemElement& element = model.elements()[e];
    if (basis == BasisKind::kLinear) {
      // integral of each hat over the element is L/2.
      rhs[element.node_a] += 0.5 * element.length;
      rhs[element.node_b] += 0.5 * element.length;
    } else {
      rhs[e] = element.length;
    }
  }
  return rhs;
}

}  // namespace

AssemblyResult assemble(const BemModel& model, const AssemblyOptions& options,
                        const AssemblyExecution& execution) {
  EBEM_EXPECT(execution.num_threads >= 1, "need at least one thread");
  const BasisKind basis = options.integrator.basis;
  const std::size_t m = model.element_count();
  const std::size_t n = model.dof_count(basis);

  const std::unique_ptr<soil::PointKernel> kernel =
      soil::make_kernel(model.soil(), options.series, options.hankel);
  IntegratorOptions integrator_options = options.integrator;
  if (model.soil().layer_count() > 2) {
    // No closed-form images beyond two layers: generic quadrature of the
    // spectral kernel (the paper's "un-admissible" cost regime, §4.2).
    integrator_options.inner = InnerIntegration::kSubtracted;
  }
  const Integrator integrator(*kernel, integrator_options);
  const auto& elements = model.elements();

  AssemblyResult result;
  result.matrix = la::SymMatrix(n);
  result.rhs = build_rhs(model, basis);
  result.element_pairs = m * (m + 1) / 2;

  // Congruence cache: referenced, never owned — a null cache means the
  // cached element_pair overload degenerates to the plain computation.
  CongruenceCache* cache = execution.cache;
  const auto finalize_stats = [&] {
    if (cache != nullptr) result.cache_stats = cache->stats();
  };

  const bool sequential = execution.num_threads == 1 && execution.pool == nullptr &&
                          !execution.measure_column_costs;
  if (sequential) {
    // Original sequential scheme: compute and assemble inside the loop.
    for (std::size_t beta = 0; beta < m; ++beta) {
      for (std::size_t alpha = beta; alpha < m; ++alpha) {
        const LocalMatrix local =
            integrator.element_pair(elements[beta], elements[alpha], cache);
        scatter(model, basis, beta, alpha, local,
                [&](std::size_t j, std::size_t i, double v) { result.matrix(j, i) += v; });
      }
    }
    finalize_stats();
    return result;
  }

  // Fused streaming scheme: each worker computes an elemental matrix and
  // immediately accumulates it into the global matrix through the stripe
  // locks — no per-pair storage, no serial scatter pass. With one thread
  // this degenerates to the sequential order, so timing-only runs
  // (measure_column_costs) stay bitwise identical to the sequential path.
  StripedMatrix striped(result.matrix);
  const auto fused_pair = [&](std::size_t beta, std::size_t alpha) {
    const LocalMatrix local = integrator.element_pair(elements[beta], elements[alpha], cache);
    scatter(model, basis, beta, alpha, local,
            [&](std::size_t j, std::size_t i, double v) { striped.add(j, i, v); });
  };
  if (execution.measure_column_costs) result.column_costs.assign(m, 0.0);

  std::optional<par::ThreadPool> owned_pool;
  par::ThreadPool* pool = execution.pool;
  if (pool == nullptr && execution.backend == Backend::kThreadPool) {
    owned_pool.emplace(execution.num_threads);
    pool = &*owned_pool;
  }
  const auto run_loop = [&](std::size_t count, const auto& body) {
    if (execution.backend == Backend::kOpenMp) {
      par::openmp_parallel_for(execution.num_threads, count, execution.schedule, body);
    } else {
      par::parallel_for(*pool, count, execution.schedule, body);
    }
  };

  if (execution.loop == ParallelLoop::kOuter) {
    run_loop(m, [&](std::size_t beta) {
      WallTimer timer;
      for (std::size_t alpha = beta; alpha < m; ++alpha) fused_pair(beta, alpha);
      if (!result.column_costs.empty()) result.column_costs[beta] = timer.seconds();
    });
  } else {
    for (std::size_t beta = 0; beta < m; ++beta) {
      WallTimer timer;
      const std::size_t rows = m - beta;
      run_loop(rows, [&](std::size_t r) { fused_pair(beta, beta + r); });
      if (!result.column_costs.empty()) result.column_costs[beta] = timer.seconds();
    }
  }
  finalize_stats();
  return result;
}

}  // namespace ebem::bem

#include "src/bem/assembly.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/common/timer.hpp"
#include "src/parallel/openmp_backend.hpp"
#include "src/soil/kernel_factory.hpp"
#include "src/parallel/parallel_for.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::bem {

namespace {

/// Flat storage for the elemental matrices of the strict upper triangle of
/// element pairs: column beta holds pairs (beta, beta..M-1).
class PairStore {
 public:
  PairStore(std::size_t m, std::size_t local_dofs) : m_(m), local_(local_dofs) {
    offsets_.resize(m + 1);
    std::size_t total = 0;
    for (std::size_t beta = 0; beta <= m; ++beta) {
      offsets_[beta] = total;
      if (beta < m) total += m - beta;
    }
    blocks_.resize(total);
  }

  [[nodiscard]] LocalMatrix& block(std::size_t beta, std::size_t alpha) {
    return blocks_[offsets_[beta] + (alpha - beta)];
  }
  [[nodiscard]] const LocalMatrix& block(std::size_t beta, std::size_t alpha) const {
    return blocks_[offsets_[beta] + (alpha - beta)];
  }
  [[nodiscard]] std::size_t local_dofs() const { return local_; }
  [[nodiscard]] std::size_t columns() const { return m_; }

 private:
  std::size_t m_;
  std::size_t local_;
  std::vector<std::size_t> offsets_;
  std::vector<LocalMatrix> blocks_;
};

/// Scatter one elemental block into the global symmetric matrix.
///
/// Only the element-pair triangle beta <= alpha is computed; the reversed
/// ordered pair (alpha as test, beta as trial) is the transpose by kernel
/// reciprocity. Packed symmetric storage holds the *value* F(j, i) of the
/// full matrix, so:
///  * self pairs (beta == alpha): the (symmetrized) block is scattered over
///    its local upper triangle only — each unordered global pair once;
///  * cross pairs: each (p, q) combination maps to a distinct unordered
///    global pair, except when the elements share a node and j == i, where
///    both the pair and its transpose hit the same diagonal entry — that
///    contribution enters twice.
void scatter(const BemModel& model, BasisKind basis, std::size_t beta, std::size_t alpha,
             const LocalMatrix& local, la::SymMatrix& matrix) {
  const std::size_t locals = model.local_dof_count(basis);
  if (beta == alpha) {
    for (std::size_t p = 0; p < locals; ++p) {
      const std::size_t j = model.global_dof(basis, beta, p);
      for (std::size_t q = p; q < locals; ++q) {
        const std::size_t i = model.global_dof(basis, alpha, q);
        // Symmetrize: the analytic-inner/Gauss-outer split introduces a tiny
        // quadrature-level asymmetry the Galerkin form does not have.
        matrix(j, i) += 0.5 * (local.value[p][q] + local.value[q][p]);
      }
    }
    return;
  }
  for (std::size_t p = 0; p < locals; ++p) {
    const std::size_t j = model.global_dof(basis, beta, p);
    for (std::size_t q = 0; q < locals; ++q) {
      const std::size_t i = model.global_dof(basis, alpha, q);
      matrix(j, i) += (j == i) ? 2.0 * local.value[p][q] : local.value[p][q];
    }
  }
}

std::vector<double> build_rhs(const BemModel& model, BasisKind basis) {
  std::vector<double> rhs(model.dof_count(basis), 0.0);
  for (std::size_t e = 0; e < model.element_count(); ++e) {
    const BemElement& element = model.elements()[e];
    if (basis == BasisKind::kLinear) {
      // integral of each hat over the element is L/2.
      rhs[element.node_a] += 0.5 * element.length;
      rhs[element.node_b] += 0.5 * element.length;
    } else {
      rhs[e] = element.length;
    }
  }
  return rhs;
}

}  // namespace

AssemblyResult assemble(const BemModel& model, const AssemblyOptions& options) {
  EBEM_EXPECT(options.num_threads >= 1, "need at least one thread");
  const BasisKind basis = options.integrator.basis;
  const std::size_t m = model.element_count();
  const std::size_t n = model.dof_count(basis);

  const std::unique_ptr<soil::PointKernel> kernel =
      soil::make_kernel(model.soil(), options.series, options.hankel);
  IntegratorOptions integrator_options = options.integrator;
  if (model.soil().layer_count() > 2) {
    // No closed-form images beyond two layers: generic quadrature of the
    // spectral kernel (the paper's "un-admissible" cost regime, §4.2).
    integrator_options.inner = InnerIntegration::kSubtracted;
  }
  const Integrator integrator(*kernel, integrator_options);
  const auto& elements = model.elements();

  AssemblyResult result;
  result.matrix = la::SymMatrix(n);
  result.rhs = build_rhs(model, basis);
  result.element_pairs = m * (m + 1) / 2;

  const bool sequential = options.num_threads == 1 && !options.measure_column_costs;
  if (sequential) {
    // Original sequential scheme: compute and assemble inside the loop.
    for (std::size_t beta = 0; beta < m; ++beta) {
      for (std::size_t alpha = beta; alpha < m; ++alpha) {
        const LocalMatrix local = integrator.element_pair(elements[beta], elements[alpha]);
        scatter(model, basis, beta, alpha, local, result.matrix);
      }
    }
    return result;
  }

  // Two-phase scheme (paper §6.2): elemental matrices are computed into
  // per-pair storage in parallel, then assembled sequentially.
  PairStore store(m, model.local_dof_count(basis));
  if (options.measure_column_costs) result.column_costs.assign(m, 0.0);

  const auto run_loop = [&](std::size_t n, const std::function<void(std::size_t)>& body,
                            par::ThreadPool& pool) {
    if (options.backend == Backend::kOpenMp) {
      par::openmp_parallel_for(options.num_threads, n, options.schedule, body);
    } else {
      par::parallel_for(pool, n, options.schedule, body);
    }
  };

  par::ThreadPool pool(options.backend == Backend::kThreadPool ? options.num_threads : 1);
  if (options.loop == ParallelLoop::kOuter) {
    run_loop(
        m,
        [&](std::size_t beta) {
          WallTimer timer;
          for (std::size_t alpha = beta; alpha < m; ++alpha) {
            store.block(beta, alpha) =
                integrator.element_pair(elements[beta], elements[alpha]);
          }
          if (!result.column_costs.empty()) result.column_costs[beta] = timer.seconds();
        },
        pool);
  } else {
    for (std::size_t beta = 0; beta < m; ++beta) {
      WallTimer timer;
      const std::size_t rows = m - beta;
      run_loop(
          rows,
          [&](std::size_t r) {
            const std::size_t alpha = beta + r;
            store.block(beta, alpha) =
                integrator.element_pair(elements[beta], elements[alpha]);
          },
          pool);
      if (!result.column_costs.empty()) result.column_costs[beta] = timer.seconds();
    }
  }

  for (std::size_t beta = 0; beta < m; ++beta) {
    for (std::size_t alpha = beta; alpha < m; ++alpha) {
      scatter(model, basis, beta, alpha, store.block(beta, alpha), result.matrix);
    }
  }
  return result;
}

}  // namespace ebem::bem

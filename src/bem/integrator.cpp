#include "src/bem/integrator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/bem/congruence_cache.hpp"
#include "src/bem/segment_integrals.hpp"
#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"
#include "src/quad/gauss.hpp"

namespace ebem::bem {

namespace {

/// Per-thread reusable image-sweep workspace, keyed on the exact source
/// geometry, kernel, layer pair and mixed-precision knob. Building the
/// sweep is the per-pair setup cost of the analytic path; hoisting it into
/// this thread_local buffer removes the churn from every element_pair call,
/// and the key check turns consecutive evaluations against the same source
/// — the batched entry point and every ACA row/column sample — into a
/// single build per (source, field layer).
struct SweepScratch {
  ImageSegmentSweep sweep;
  std::uint64_t kernel_epoch = 0;  ///< 0 never matches a live kernel
  geom::Vec3 a, b;
  double radius = -1.0;
  double mixed_tail_threshold = -1.0;
  std::size_t source_layer = static_cast<std::size_t>(-1);
  std::size_t field_layer = static_cast<std::size_t>(-1);
};

const ImageSegmentSweep& term_sweep(const soil::ImageKernel& kernel, const BemElement& source,
                                    std::size_t field_layer, double mixed_tail_threshold) {
  thread_local SweepScratch scratch;
  // Exact comparisons on purpose: any difference rebuilds, a stale hit is
  // impossible (the kernel is identified by its process-unique epoch, not
  // its address), and the fixed-source case the batch/sampling paths
  // produce is the one that hits.
  const bool hit = scratch.kernel_epoch == kernel.epoch() &&
                   scratch.field_layer == field_layer &&
                   scratch.source_layer == source.layer && scratch.radius == source.radius &&
                   scratch.mixed_tail_threshold == mixed_tail_threshold &&
                   scratch.a.x == source.a.x && scratch.a.y == source.a.y &&
                   scratch.a.z == source.a.z && scratch.b.x == source.b.x &&
                   scratch.b.y == source.b.y && scratch.b.z == source.b.z;
  if (hit) return scratch.sweep;
  ImageSegmentSweep& sweep = scratch.sweep;
  sweep.clear();
  // Every image of the straight source segment shares its x/y geometry
  // (images remap only z), so the whole family is one base plus three
  // per-term scalars — no per-image make_segment_frame.
  const geom::Vec3 axis = source.b - source.a;
  const double length = geom::norm(axis);
  EBEM_EXPECT(length > 0.0, "source segment must have positive length");
  sweep.ax = source.a.x;
  sweep.ay = source.a.y;
  sweep.ux = axis.x / length;
  sweep.uy = axis.y / length;
  sweep.length = length;
  sweep.radius2 = square(source.radius);
  const double uz = axis.z / length;
  const auto& terms = kernel.terms(source.layer, field_layer);
  sweep.az.reserve(terms.size());
  sweep.muz.reserve(terms.size());
  sweep.weight.reserve(terms.size());
  const auto push = [&](const soil::ImageTerm& term) {
    sweep.az.push_back(term.mirror * source.a.z + term.offset);
    sweep.muz.push_back(term.mirror * uz);
    sweep.weight.push_back(term.weight);
  };
  if (mixed_tail_threshold <= 0.0) {
    for (const soil::ImageTerm& term : terms) push(term);
    sweep.tail_begin = sweep.size();
  } else {
    // Partition: full-precision head first (original order), then the
    // small-|weight| tail the sweep evaluates in single precision.
    double max_weight = 0.0;
    for (const soil::ImageTerm& term : terms) {
      max_weight = std::max(max_weight, std::abs(term.weight));
    }
    const double cut = mixed_tail_threshold * max_weight;
    for (const soil::ImageTerm& term : terms) {
      if (std::abs(term.weight) >= cut) push(term);
    }
    sweep.tail_begin = sweep.size();
    for (const soil::ImageTerm& term : terms) {
      if (std::abs(term.weight) < cut) push(term);
    }
  }
  scratch.kernel_epoch = kernel.epoch();
  scratch.a = source.a;
  scratch.b = source.b;
  scratch.radius = source.radius;
  scratch.mixed_tail_threshold = mixed_tail_threshold;
  scratch.source_layer = source.layer;
  scratch.field_layer = field_layer;
  return scratch.sweep;
}

}  // namespace

Integrator::Integrator(const soil::PointKernel& kernel, const IntegratorOptions& options)
    : kernel_(kernel),
      image_kernel_(dynamic_cast<const soil::ImageKernel*>(&kernel)),
      options_(options) {
  EBEM_EXPECT(options.outer_gauss_points >= 1, "need at least one outer Gauss point");
  EBEM_EXPECT(options.inner_gauss_points >= 1, "need at least one inner Gauss point");
  EBEM_EXPECT(options.inner != InnerIntegration::kAnalytic || image_kernel_ != nullptr,
              "analytic inner integration requires an image-series kernel (1-2 layer soil); "
              "use InnerIntegration::kGauss for deeper stacks");
}

std::array<double, 2> Integrator::inner_integrals(geom::Vec3 field_point,
                                                  const BemElement& source,
                                                  std::size_t field_layer) const {
  std::array<double, 2> result{0.0, 0.0};

  if (options_.inner == InnerIntegration::kAnalytic) {
    const ImageSegmentSweep& sweep =
        term_sweep(*image_kernel_, source, field_layer, options_.mixed_tail_threshold);
    const bool linear = options_.basis == BasisKind::kLinear;
    if (options_.segment_eval == SegmentEval::kBatched) {
      accumulate_image_sweep(sweep, &field_point.x, &field_point.y, &field_point.z, 1, linear,
                             &result[0], &result[1]);
    } else {
      accumulate_image_sweep_reference(sweep, &field_point.x, &field_point.y, &field_point.z, 1,
                                       linear, &result[0], &result[1]);
    }
    const double prefactor = image_kernel_->prefactor(source.layer);
    result[0] *= prefactor;
    result[1] *= prefactor;
    return result;
  }

  // Generic paths: Gauss quadrature of the regularized point kernel
  // (prefactor included by the kernel), optionally with the singular q/r
  // part peeled off and integrated in closed form. The subtraction is
  // error-neutral by construction (what is subtracted under the quadrature
  // is added back exactly); choosing q as the kernel's local singular
  // strength makes the quadratured remainder smooth.
  double singular_strength = 0.0;
  if (options_.inner == InnerIntegration::kSubtracted) {
    const soil::LayeredSoil& soil = kernel_.soil_model();
    singular_strength = 1.0 / (2.0 * kPi * (soil.conductivity(source.layer) +
                                            soil.conductivity(field_layer)));
  }

  const quad::Rule& rule = quad::cached_gauss_legendre(options_.inner_gauss_points);
  const double half = 0.5 * source.length;
  // One batched kernel call for all inner nodes: kernels with vectorizable
  // structure (the image series) sum their terms in SoA form per node, the
  // rest fall back to the per-node virtual loop.
  thread_local std::vector<geom::Vec3> xi_nodes;
  thread_local std::vector<double> g_values;
  xi_nodes.resize(rule.size());
  g_values.resize(rule.size());
  for (std::size_t q = 0; q < rule.size(); ++q) {
    const double t = 0.5 * (1.0 + rule.nodes[q]);  // in [0, 1]
    xi_nodes[q] = source.a + t * (source.b - source.a);
  }
  kernel_.evaluate_regularized_batch(field_point, xi_nodes.data(), rule.size(), source.radius,
                                     g_values.data());
  for (std::size_t q = 0; q < rule.size(); ++q) {
    const double t = 0.5 * (1.0 + rule.nodes[q]);
    const geom::Vec3& xi = xi_nodes[q];
    double g = g_values[q];
    if (singular_strength != 0.0) {
      const double r_reg = std::sqrt(square(field_point.x - xi.x) + square(field_point.y - xi.y) +
                                     square(field_point.z - xi.z) + square(source.radius));
      g -= singular_strength / r_reg;
    }
    const double weight = rule.weights[q] * half * g;
    if (options_.basis == BasisKind::kLinear) {
      result[0] += weight * (1.0 - t);
      result[1] += weight * t;
    } else {
      result[0] += weight;
    }
  }
  if (singular_strength != 0.0) {
    const SegmentPotentials s =
        segment_potentials(field_point, source.a, source.b, source.radius);
    if (options_.basis == BasisKind::kLinear) {
      result[0] += singular_strength * shape_start_integral(s, source.length);
      result[1] += singular_strength * shape_end_integral(s, source.length);
    } else {
      result[0] += singular_strength * s.i0;
    }
  }
  return result;
}

LocalMatrix Integrator::element_pair(const BemElement& field, const BemElement& source) const {
  if (options_.inner == InnerIntegration::kAnalytic) {
    return element_pair_analytic(field, source);
  }

  const quad::Rule& rule = quad::cached_gauss_legendre(options_.outer_gauss_points);
  const double half = 0.5 * field.length;

  LocalMatrix local;
  for (std::size_t q = 0; q < rule.size(); ++q) {
    const double t = 0.5 * (1.0 + rule.nodes[q]);
    const geom::Vec3 chi = field.a + t * (field.b - field.a);
    const std::array<double, 2> inner = inner_integrals(chi, source, field.layer);
    const double weight = rule.weights[q] * half;
    if (options_.basis == BasisKind::kLinear) {
      const double w0 = weight * (1.0 - t);
      const double w1 = weight * t;
      local.value[0][0] += w0 * inner[0];
      local.value[0][1] += w0 * inner[1];
      local.value[1][0] += w1 * inner[0];
      local.value[1][1] += w1 * inner[1];
    } else {
      local.value[0][0] += weight * inner[0];
    }
  }
  return local;
}

LocalMatrix Integrator::element_pair_analytic(const BemElement& field,
                                              const BemElement& source) const {
  const quad::Rule& rule = quad::cached_gauss_legendre(options_.outer_gauss_points);
  const std::size_t points = rule.size();
  const double half = 0.5 * field.length;

  // Per-thread scratch: outer Gauss points of the field element in SoA form
  // and the inner-integral accumulators, reused across the triangle loop.
  thread_local std::vector<double> scratch;
  scratch.resize(5 * points);
  double* xs = scratch.data();
  double* ys = xs + points;
  double* zs = ys + points;
  double* acc0 = zs + points;
  double* acc1 = acc0 + points;
  std::fill(acc0, acc1 + points, 0.0);
  for (std::size_t q = 0; q < points; ++q) {
    const double t = 0.5 * (1.0 + rule.nodes[q]);
    xs[q] = field.a.x + t * (field.b.x - field.a.x);
    ys[q] = field.a.y + t * (field.b.y - field.a.y);
    zs[q] = field.a.z + t * (field.b.z - field.a.z);
  }

  // One fused SIMD sweep over (image term x outer Gauss point): the image
  // sweep comes from the per-thread workspace (built once per source and
  // field layer, reused verbatim when the source repeats) and every term is
  // applied to the whole Gauss-point batch before moving to the next image.
  const bool linear = options_.basis == BasisKind::kLinear;
  const ImageSegmentSweep& sweep =
      term_sweep(*image_kernel_, source, field.layer, options_.mixed_tail_threshold);
  if (options_.segment_eval == SegmentEval::kBatched) {
    accumulate_image_sweep(sweep, xs, ys, zs, points, linear, acc0, acc1);
  } else {
    accumulate_image_sweep_reference(sweep, xs, ys, zs, points, linear, acc0, acc1);
  }

  const double prefactor = image_kernel_->prefactor(source.layer);
  LocalMatrix local;
  for (std::size_t q = 0; q < points; ++q) {
    const double t = 0.5 * (1.0 + rule.nodes[q]);
    const double weight = rule.weights[q] * half;
    const double inner0 = prefactor * acc0[q];
    if (linear) {
      const double inner1 = prefactor * acc1[q];
      const double w0 = weight * (1.0 - t);
      const double w1 = weight * t;
      local.value[0][0] += w0 * inner0;
      local.value[0][1] += w0 * inner1;
      local.value[1][0] += w1 * inner0;
      local.value[1][1] += w1 * inner1;
    } else {
      local.value[0][0] += weight * inner0;
    }
  }
  return local;
}

LocalMatrix Integrator::element_pair(const BemElement& field, const BemElement& source,
                                     CongruenceCache* cache, bool* was_hit) const {
  if (was_hit != nullptr) *was_hit = false;
  if (cache == nullptr) return element_pair(field, source);
  // Role-canonical key: well-separated pairs share one entry with their
  // swapped-role congruent copies (replayed transposed); near pairs keep the
  // ordered key, where the transpose identity is only quadrature-accurate.
  const CanonicalPairSignature signature =
      make_canonical_pair_signature(field, source, cache->quantum());
  LocalMatrix block;
  if (cache->lookup(signature, block)) {
    if (was_hit != nullptr) *was_hit = true;
    return block;
  }
  block = element_pair(field, source);
  cache->insert(signature, block);
  return block;
}

void Integrator::element_pair_batch(const BemElement& source,
                                    std::span<const BemElement* const> fields,
                                    LocalMatrix* out) const {
  // The batching win lives in term_frames(): with the source fixed, the
  // image frames survive across fields (rebuilt only when the field layer
  // changes), so each additional field costs just its outer sweep. The
  // generic-quadrature paths have no per-source setup to share.
  for (std::size_t k = 0; k < fields.size(); ++k) {
    out[k] = element_pair(*fields[k], source);
  }
}

void Integrator::element_pair_batch(const BemElement& source,
                                    std::span<const BemElement* const> fields, LocalMatrix* out,
                                    CongruenceCache* cache, std::size_t* replayed) const {
  if (cache == nullptr) {
    element_pair_batch(source, fields, out);
    return;
  }
  // Same replay discipline as the cached element_pair: canonical signature
  // first, integrate only the misses. The shared per-source workspace still
  // amortizes across the misses of one batch, so a cold batch costs what the
  // uncached entry does and a warm one costs only the signature lookups.
  std::size_t hits = 0;
  for (std::size_t k = 0; k < fields.size(); ++k) {
    bool was_hit = false;
    out[k] = element_pair(*fields[k], source, cache, &was_hit);
    hits += was_hit ? 1 : 0;
  }
  if (replayed != nullptr) *replayed += hits;
}

std::array<double, 2> Integrator::potential_influence(geom::Vec3 x,
                                                      const BemElement& source) const {
  const std::size_t field_layer = kernel_.soil_model().layer_of(std::min(x.z, 0.0));
  return inner_integrals(x, source, field_layer);
}

}  // namespace ebem::bem

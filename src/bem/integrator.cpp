#include "src/bem/integrator.hpp"

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/bem/congruence_cache.hpp"
#include "src/bem/segment_integrals.hpp"
#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"
#include "src/quad/gauss.hpp"

namespace ebem::bem {

namespace {

/// One mirrored image of the source segment with its precomputed frame.
struct TermFrame {
  SegmentFrame frame;
  double weight = 0.0;
};

/// Per-thread reusable image-frame workspace, keyed on the exact source
/// geometry, kernel and layer pair. Building the frames is the per-pair
/// setup cost of the analytic path (one make_segment_frame per image term);
/// hoisting them into this thread_local buffer removes the churn from every
/// element_pair call, and the key check turns consecutive evaluations
/// against the same source — the batched entry point and every ACA
/// row/column sample — into a single frame build per (source, field layer).
struct FrameScratch {
  std::vector<TermFrame> frames;
  std::uint64_t kernel_epoch = 0;  ///< 0 never matches a live kernel
  geom::Vec3 a, b;
  double radius = -1.0;
  std::size_t source_layer = static_cast<std::size_t>(-1);
  std::size_t field_layer = static_cast<std::size_t>(-1);
};

const std::vector<TermFrame>& term_frames(const soil::ImageKernel& kernel,
                                          const BemElement& source, std::size_t field_layer) {
  thread_local FrameScratch scratch;
  // Exact comparisons on purpose: any difference rebuilds, a stale hit is
  // impossible (the kernel is identified by its process-unique epoch, not
  // its address), and the fixed-source case the batch/sampling paths
  // produce is the one that hits.
  const bool hit = scratch.kernel_epoch == kernel.epoch() &&
                   scratch.field_layer == field_layer &&
                   scratch.source_layer == source.layer && scratch.radius == source.radius &&
                   scratch.a.x == source.a.x && scratch.a.y == source.a.y &&
                   scratch.a.z == source.a.z && scratch.b.x == source.b.x &&
                   scratch.b.y == source.b.y && scratch.b.z == source.b.z;
  if (hit) return scratch.frames;
  scratch.frames.clear();
  const auto& terms = kernel.terms(source.layer, field_layer);
  scratch.frames.reserve(terms.size());
  for (const soil::ImageTerm& term : terms) {
    // Image of the straight source segment: same x/y, affine-mapped z.
    const geom::Vec3 a{source.a.x, source.a.y, term.mirror * source.a.z + term.offset};
    const geom::Vec3 b{source.b.x, source.b.y, term.mirror * source.b.z + term.offset};
    scratch.frames.push_back({make_segment_frame(a, b, source.radius), term.weight});
  }
  scratch.kernel_epoch = kernel.epoch();
  scratch.a = source.a;
  scratch.b = source.b;
  scratch.radius = source.radius;
  scratch.source_layer = source.layer;
  scratch.field_layer = field_layer;
  return scratch.frames;
}

}  // namespace

Integrator::Integrator(const soil::PointKernel& kernel, const IntegratorOptions& options)
    : kernel_(kernel),
      image_kernel_(dynamic_cast<const soil::ImageKernel*>(&kernel)),
      options_(options) {
  EBEM_EXPECT(options.outer_gauss_points >= 1, "need at least one outer Gauss point");
  EBEM_EXPECT(options.inner_gauss_points >= 1, "need at least one inner Gauss point");
  EBEM_EXPECT(options.inner != InnerIntegration::kAnalytic || image_kernel_ != nullptr,
              "analytic inner integration requires an image-series kernel (1-2 layer soil); "
              "use InnerIntegration::kGauss for deeper stacks");
}

std::array<double, 2> Integrator::inner_integrals(geom::Vec3 field_point,
                                                  const BemElement& source,
                                                  std::size_t field_layer) const {
  std::array<double, 2> result{0.0, 0.0};

  if (options_.inner == InnerIntegration::kAnalytic) {
    for (const TermFrame& term : term_frames(*image_kernel_, source, field_layer)) {
      const SegmentPotentials s = segment_potentials(term.frame, field_point);
      if (options_.basis == BasisKind::kLinear) {
        result[0] += term.weight * shape_start_integral(s, source.length);
        result[1] += term.weight * shape_end_integral(s, source.length);
      } else {
        result[0] += term.weight * s.i0;
      }
    }
    const double prefactor = image_kernel_->prefactor(source.layer);
    result[0] *= prefactor;
    result[1] *= prefactor;
    return result;
  }

  // Generic paths: Gauss quadrature of the regularized point kernel
  // (prefactor included by the kernel), optionally with the singular q/r
  // part peeled off and integrated in closed form. The subtraction is
  // error-neutral by construction (what is subtracted under the quadrature
  // is added back exactly); choosing q as the kernel's local singular
  // strength makes the quadratured remainder smooth.
  double singular_strength = 0.0;
  if (options_.inner == InnerIntegration::kSubtracted) {
    const soil::LayeredSoil& soil = kernel_.soil_model();
    singular_strength = 1.0 / (2.0 * kPi * (soil.conductivity(source.layer) +
                                            soil.conductivity(field_layer)));
  }

  const quad::Rule& rule = quad::cached_gauss_legendre(options_.inner_gauss_points);
  const double half = 0.5 * source.length;
  for (std::size_t q = 0; q < rule.size(); ++q) {
    const double t = 0.5 * (1.0 + rule.nodes[q]);  // in [0, 1]
    const geom::Vec3 xi = source.a + t * (source.b - source.a);
    double g = kernel_.evaluate_regularized(field_point, xi, source.radius);
    if (singular_strength != 0.0) {
      const double r_reg = std::sqrt(square(field_point.x - xi.x) + square(field_point.y - xi.y) +
                                     square(field_point.z - xi.z) + square(source.radius));
      g -= singular_strength / r_reg;
    }
    const double weight = rule.weights[q] * half * g;
    if (options_.basis == BasisKind::kLinear) {
      result[0] += weight * (1.0 - t);
      result[1] += weight * t;
    } else {
      result[0] += weight;
    }
  }
  if (singular_strength != 0.0) {
    const SegmentPotentials s =
        segment_potentials(field_point, source.a, source.b, source.radius);
    if (options_.basis == BasisKind::kLinear) {
      result[0] += singular_strength * shape_start_integral(s, source.length);
      result[1] += singular_strength * shape_end_integral(s, source.length);
    } else {
      result[0] += singular_strength * s.i0;
    }
  }
  return result;
}

LocalMatrix Integrator::element_pair(const BemElement& field, const BemElement& source) const {
  if (options_.inner == InnerIntegration::kAnalytic) {
    return element_pair_analytic(field, source);
  }

  const quad::Rule& rule = quad::cached_gauss_legendre(options_.outer_gauss_points);
  const double half = 0.5 * field.length;

  LocalMatrix local;
  for (std::size_t q = 0; q < rule.size(); ++q) {
    const double t = 0.5 * (1.0 + rule.nodes[q]);
    const geom::Vec3 chi = field.a + t * (field.b - field.a);
    const std::array<double, 2> inner = inner_integrals(chi, source, field.layer);
    const double weight = rule.weights[q] * half;
    if (options_.basis == BasisKind::kLinear) {
      const double w0 = weight * (1.0 - t);
      const double w1 = weight * t;
      local.value[0][0] += w0 * inner[0];
      local.value[0][1] += w0 * inner[1];
      local.value[1][0] += w1 * inner[0];
      local.value[1][1] += w1 * inner[1];
    } else {
      local.value[0][0] += weight * inner[0];
    }
  }
  return local;
}

LocalMatrix Integrator::element_pair_analytic(const BemElement& field,
                                              const BemElement& source) const {
  const quad::Rule& rule = quad::cached_gauss_legendre(options_.outer_gauss_points);
  const std::size_t points = rule.size();
  const double half = 0.5 * field.length;

  // Per-thread scratch: outer Gauss points of the field element and the
  // inner-integral accumulators, reused across the whole triangle loop.
  thread_local std::vector<geom::Vec3> chi;
  thread_local std::vector<double> acc0;
  thread_local std::vector<double> acc1;
  chi.resize(points);
  acc0.assign(points, 0.0);
  acc1.assign(points, 0.0);
  for (std::size_t q = 0; q < points; ++q) {
    const double t = 0.5 * (1.0 + rule.nodes[q]);
    chi[q] = field.a + t * (field.b - field.a);
  }

  // One SoA sweep per image term: the mirrored segment frames come from the
  // per-thread workspace (built once per source and field layer, reused
  // verbatim when the source repeats) and each is evaluated against every
  // outer Gauss point, instead of rebuilding each image for every field
  // point and every pair.
  const bool linear = options_.basis == BasisKind::kLinear;
  for (const TermFrame& term : term_frames(*image_kernel_, source, field.layer)) {
    for (std::size_t q = 0; q < points; ++q) {
      const SegmentPotentials s = segment_potentials(term.frame, chi[q]);
      if (linear) {
        acc0[q] += term.weight * shape_start_integral(s, source.length);
        acc1[q] += term.weight * shape_end_integral(s, source.length);
      } else {
        acc0[q] += term.weight * s.i0;
      }
    }
  }

  const double prefactor = image_kernel_->prefactor(source.layer);
  LocalMatrix local;
  for (std::size_t q = 0; q < points; ++q) {
    const double t = 0.5 * (1.0 + rule.nodes[q]);
    const double weight = rule.weights[q] * half;
    const double inner0 = prefactor * acc0[q];
    if (linear) {
      const double inner1 = prefactor * acc1[q];
      const double w0 = weight * (1.0 - t);
      const double w1 = weight * t;
      local.value[0][0] += w0 * inner0;
      local.value[0][1] += w0 * inner1;
      local.value[1][0] += w1 * inner0;
      local.value[1][1] += w1 * inner1;
    } else {
      local.value[0][0] += weight * inner0;
    }
  }
  return local;
}

LocalMatrix Integrator::element_pair(const BemElement& field, const BemElement& source,
                                     CongruenceCache* cache, bool* was_hit) const {
  if (was_hit != nullptr) *was_hit = false;
  if (cache == nullptr) return element_pair(field, source);
  // Role-canonical key: well-separated pairs share one entry with their
  // swapped-role congruent copies (replayed transposed); near pairs keep the
  // ordered key, where the transpose identity is only quadrature-accurate.
  const CanonicalPairSignature signature =
      make_canonical_pair_signature(field, source, cache->quantum());
  LocalMatrix block;
  if (cache->lookup(signature, block)) {
    if (was_hit != nullptr) *was_hit = true;
    return block;
  }
  block = element_pair(field, source);
  cache->insert(signature, block);
  return block;
}

void Integrator::element_pair_batch(const BemElement& source,
                                    std::span<const BemElement* const> fields,
                                    LocalMatrix* out) const {
  // The batching win lives in term_frames(): with the source fixed, the
  // image frames survive across fields (rebuilt only when the field layer
  // changes), so each additional field costs just its outer sweep. The
  // generic-quadrature paths have no per-source setup to share.
  for (std::size_t k = 0; k < fields.size(); ++k) {
    out[k] = element_pair(*fields[k], source);
  }
}

std::array<double, 2> Integrator::potential_influence(geom::Vec3 x,
                                                      const BemElement& source) const {
  const std::size_t field_layer = kernel_.soil_model().layer_of(std::min(x.z, 0.0));
  return inner_integrals(x, source, field_layer);
}

}  // namespace ebem::bem

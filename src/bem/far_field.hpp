// Near/far partition of the Galerkin system and the ACA far-field builder —
// what turns the compressed tile store into an H-matrix.
//
// Clusters are tile rows of the matrix layout — in *storage* order: without
// a DoF ordering a cluster is the set of elements supporting a contiguous
// range of the model's own DoF numbering (a geometric slab on structured
// grids); with CompressionConfig::ordering == kGeometric the optional
// la::Permutation maps DoFs onto the RCB cluster tree of clustering.hpp
// first, so every tile row is one *leaf cluster* of that tree — compact and
// near-cubical regardless of mesh numbering, which is what makes square
// grids compressible. Either way a cluster carries its axis-aligned
// bounding box and longest member element. Two tile-row ranges are
// *admissible* when their boxes pass the pair_signature separation
// predicate — box distance at least kTransposeSeparationRatio times the
// longest supported element — the same measured-decay gate that already
// bounds the congruence cache's transposed replays; box distance
// lower-bounds every crossing pair's midpoint separation, so admissibility
// of the block implies the gate for each of its pairs.
//
// partition_far_field() recursively subdivides the lower-triangle tile
// square into maximal admissible candidate blocks (near tiles fall out as
// uncovered). build_far_field() then runs ACA on each candidate, sampling
// matrix rows/columns through Integrator::element_pair_batch (one source
// element against a cluster's elements per sample — the dense block is
// never formed), installs the factors that converge and pay for
// themselves, and splits the ones that do not. Assembly's pairwise loop
// afterwards skips every pair whose entries all land in covered tiles.
#pragma once

#include <cstddef>
#include <vector>

#include "src/bem/element.hpp"
#include "src/bem/integrator.hpp"
#include "src/geom/vec3.hpp"
#include "src/la/compressed_tile_store.hpp"

namespace ebem::la {
class Permutation;
}  // namespace ebem::la

namespace ebem::par {
class ThreadPool;
}  // namespace ebem::par

namespace ebem::bem {

/// Pair-work accounting of one compressed assembly. The exact-integration
/// bill is pairs_near + pairs_sampled - pairs_replayed; pairs_skipped is
/// what compression removed from the O(M^2) loop entirely.
struct FarFieldStats {
  std::size_t pairs_near = 0;      ///< pairs routed through the near-field loop
  std::size_t pairs_sampled = 0;   ///< element-pair evaluations spent on ACA samples
  std::size_t pairs_skipped = 0;   ///< pairs never integrated (covered by factors)
  std::size_t pairs_replayed = 0;  ///< sampled pairs served from the congruence cache
};

/// Geometry of one tile-row cluster: every element supporting a DoF of the
/// row, their merged bounding box and the longest among them.
struct TileRowCluster {
  geom::Vec3 box_min;
  geom::Vec3 box_max;
  double max_element_length = 0.0;
  std::vector<std::size_t> elements;  ///< ascending element ids
};

/// Candidate far block: tile-row range (test side) x tile-column range
/// (trial side), col_end <= row_begin (strictly below the diagonal).
struct FarBlock {
  std::size_t row_tile_begin = 0;
  std::size_t row_tile_end = 0;
  std::size_t col_tile_begin = 0;
  std::size_t col_tile_end = 0;
};

struct FarFieldPartition {
  std::vector<TileRowCluster> clusters;  ///< one per tile row
  std::vector<FarBlock> candidates;      ///< admissible blocks, pre-ACA
};

/// Euclidean distance between two axis-aligned boxes (0 when they overlap).
[[nodiscard]] double box_distance(const geom::Vec3& a_min, const geom::Vec3& a_max,
                                  const geom::Vec3& b_min, const geom::Vec3& b_max);

/// Cluster geometry of every tile row of `layout` (supports of its DoFs).
/// `ordering`, when non-null, maps each model DoF to its internal storage
/// index first (tile rows then cover the geometric leaf clusters).
[[nodiscard]] std::vector<TileRowCluster> build_tile_row_clusters(
    const BemModel& model, BasisKind basis, const la::TileLayout& layout,
    const la::Permutation* ordering = nullptr);

/// The admissibility gate over two merged cluster ranges, exposed for the
/// property tests: box separation against the longest element on either
/// side, through pair_signature's transpose_separated predicate.
[[nodiscard]] bool clusters_admissible(const TileRowCluster& a, const TileRowCluster& b);

/// Recursive block partition of the lower-triangle tile square: maximal
/// admissible blocks with at least compression.min_block DoFs per side
/// become candidates; everything else stays dense (near field).
[[nodiscard]] FarFieldPartition partition_far_field(const BemModel& model, BasisKind basis,
                                                    const la::TileLayout& layout,
                                                    const la::CompressionConfig& compression,
                                                    const la::Permutation* ordering = nullptr);

/// Run ACA over the candidates and install the accepted factors into
/// `store`. Candidates that fail the rank budget are split and retried;
/// blocks whose factors would not undercut their dense tiles stay dense.
/// Parallel over blocks on `pool` (serial when null), deterministic either
/// way. Accumulates pairs_sampled into `stats`. `ordering` must be the same
/// permutation (or null) the partition's clusters were built with. A
/// non-null `cache` replays congruent sampled pairs instead of
/// re-integrating them (pairs_replayed counts the hits): ACA row/column
/// samples revisit the same translated pair geometries across ranks and
/// across overlapping split retries, so on structured grids most of the
/// sampling bill collapses onto cached transforms.
void build_far_field(la::CompressedTileStore& store, const BemModel& model, BasisKind basis,
                     const Integrator& integrator, const FarFieldPartition& partition,
                     par::ThreadPool* pool, FarFieldStats& stats,
                     const la::Permutation* ordering = nullptr,
                     CongruenceCache* cache = nullptr);

}  // namespace ebem::bem

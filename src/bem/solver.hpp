// Linear-system solution stage (paper §4.3): direct Cholesky O(N^3/3) or
// the paper's preferred diagonally preconditioned conjugate gradient.
// Both paths parallelize over a worker pool: the blocked Cholesky runs its
// panel solve and trailing update across threads, PCG its matrix-vector
// product — so the solve phase scales alongside the fused assembly instead
// of capping end-to-end speed-up (Amdahl).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/la/permutation.hpp"
#include "src/la/sym_matrix.hpp"

namespace ebem::par {
class ThreadPool;
}  // namespace ebem::par

namespace ebem::bem {

enum class SolverKind {
  kCholesky,  ///< direct LL^T (reference; out of range for very large N)
  kPcg,       ///< Jacobi-preconditioned CG (paper's recommendation)
};

/// Numerical policy of the solve — which algorithm, to what accuracy.
/// Worker resources live in SolveExecution (the old num_threads/pool knobs:
/// a single engine::ExecutionConfig now resolves them once, which also
/// retires the footgun of a supplied pool being silently ignored whenever
/// num_threads stayed 1).
struct SolverOptions {
  SolverKind kind = SolverKind::kCholesky;
  double cg_tolerance = 1e-12;
  std::size_t cg_max_iterations = 0;  ///< 0 = automatic
};

/// Resolved execution plumbing for one solve. The pool is referenced, not
/// owned; null keeps the serial reference path.
struct SolveExecution {
  par::ThreadPool* pool = nullptr;
  /// Panel width (= factor tile size) of the blocked Cholesky factorization.
  std::size_t cholesky_block = 64;
  /// Serial/parallel crossover of the pooled matvec (PCG iterations and the
  /// direct path's residual check); engine::ExecutionConfig tunes it.
  std::size_t matvec_parallel_cutoff = la::SymMatrix::kParallelCutoff;
  /// Direct path only: whether a caller-supplied SolveStats gets the
  /// achieved relative residual. The check costs one O(N^2) matvec — a full
  /// re-page of a spill-backed matrix — so callers that only want the cheap
  /// counters (factor_tiles) turn it off.
  bool measure_residual = true;
  /// DoF ordering the matrix was assembled under (AssemblyResult::ordering),
  /// or null when the matrix follows the model's numbering. When set, `rhs`
  /// is taken in external order, gathered into the matrix's internal order
  /// for the solve, and the solution is scattered back — callers see
  /// external order on both sides, identical to the unordered path.
  const la::Permutation* ordering = nullptr;
};

struct SolveStats {
  std::size_t iterations = 0;  ///< 0 for the direct solver
  double relative_residual = 0.0;
  /// Pager counters of the Cholesky factor's working store (zeros for PCG
  /// and for in-memory factors) — evictions and spill IO of an out-of-core
  /// solve surface here and on the engine's PhaseReport.
  la::TileStoreStats factor_tiles;
};

/// Solve R sigma = nu. Throws if PCG fails to converge.
[[nodiscard]] std::vector<double> solve(const la::SymMatrix& matrix, std::span<const double> rhs,
                                        const SolverOptions& options = {},
                                        const SolveExecution& execution = {},
                                        SolveStats* stats = nullptr);

/// Serial shim of the above for callers without an execution plan.
[[nodiscard]] std::vector<double> solve(const la::SymMatrix& matrix, std::span<const double> rhs,
                                        const SolverOptions& options, SolveStats* stats);

}  // namespace ebem::bem

// Linear-system solution stage (paper §4.3): direct Cholesky O(N^3/3) or
// the paper's preferred diagonally preconditioned conjugate gradient.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/la/sym_matrix.hpp"

namespace ebem::bem {

enum class SolverKind {
  kCholesky,  ///< direct LL^T (reference; out of range for very large N)
  kPcg,       ///< Jacobi-preconditioned CG (paper's recommendation)
};

struct SolverOptions {
  SolverKind kind = SolverKind::kCholesky;
  double cg_tolerance = 1e-12;
  std::size_t cg_max_iterations = 0;  ///< 0 = automatic
};

struct SolveStats {
  std::size_t iterations = 0;  ///< 0 for the direct solver
  double relative_residual = 0.0;
};

/// Solve R sigma = nu. Throws if PCG fails to converge.
[[nodiscard]] std::vector<double> solve(const la::SymMatrix& matrix, std::span<const double> rhs,
                                        const SolverOptions& options, SolveStats* stats = nullptr);

}  // namespace ebem::bem

// Linear-system solution stage (paper §4.3): direct Cholesky O(N^3/3) or
// the paper's preferred diagonally preconditioned conjugate gradient.
// Both paths parallelize over a worker pool: the blocked Cholesky runs its
// panel solve and trailing update across threads, PCG its matrix-vector
// product — so the solve phase scales alongside the fused assembly instead
// of capping end-to-end speed-up (Amdahl).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/la/sym_matrix.hpp"

namespace ebem::par {
class ThreadPool;
}  // namespace ebem::par

namespace ebem::bem {

enum class SolverKind {
  kCholesky,  ///< direct LL^T (reference; out of range for very large N)
  kPcg,       ///< Jacobi-preconditioned CG (paper's recommendation)
};

struct SolverOptions {
  SolverKind kind = SolverKind::kCholesky;
  double cg_tolerance = 1e-12;
  std::size_t cg_max_iterations = 0;  ///< 0 = automatic
  /// Worker count for the solve phase; 1 keeps the serial reference path.
  std::size_t num_threads = 1;
  /// Optional externally owned pool reused instead of spawning workers;
  /// only consulted when num_threads > 1.
  par::ThreadPool* pool = nullptr;
  /// Panel width of the blocked Cholesky factorization.
  std::size_t cholesky_block = 64;
};

struct SolveStats {
  std::size_t iterations = 0;  ///< 0 for the direct solver
  double relative_residual = 0.0;
};

/// Solve R sigma = nu. Throws if PCG fails to converge.
[[nodiscard]] std::vector<double> solve(const la::SymMatrix& matrix, std::span<const double> rhs,
                                        const SolverOptions& options, SolveStats* stats = nullptr);

}  // namespace ebem::bem

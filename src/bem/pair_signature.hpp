// Canonical geometric signature of an element pair, the key of the
// congruence cache (ROADMAP: "geometric congruence caching").
//
// Every soil kernel in the library is a layered-medium Green's function and
// therefore invariant under horizontal rigid motions: translating, rotating
// (about the vertical axis) or reflecting (through a vertical plane) *both*
// elements of a pair leaves the Galerkin block R^{beta alpha} unchanged —
// the images move with the sources and every source/image-to-field distance
// is preserved. z is special (the surface and layer interfaces are physical
// planes), so vertical coordinates enter the signature verbatim.
//
// The signature is the pair's geometry expressed in a canonical horizontal
// frame — translate the field start point to the origin, rotate the first
// non-degenerate direction onto +x, reflect the first off-axis direction to
// y > 0 — and quantized to an integer lattice. Two pairs congruent up to
// the quantum map to the same key; on a uniform rectangular grid the
// M(M+1)/2 pairs collapse into O(M) classes, which is what lets assembly
// skip almost every integration.
#pragma once

#include <array>
#include <cstdint>

#include "src/bem/element.hpp"

namespace ebem::bem {

/// Default signature quantization step [m]. Chosen so that two pairs mapped
/// to the same key have geometries equal to well below the 1e-12 relative
/// parity tolerance expected between cache-on and cache-off assembly, while
/// still absorbing the ~1e-14 float noise of the canonicalization itself.
inline constexpr double kDefaultCongruenceQuantum = 1e-12;

/// Quantized canonical pair geometry plus its precomputed hash.
struct PairSignature {
  /// Canonical-frame coordinates on the quantum lattice:
  /// [0..5]  horizontal field direction u, source direction v and relative
  ///         offset w (two lattice coordinates each),
  /// [6..9]  vertical endpoint coordinates z_Fa, z_Fb, z_Sa, z_Sb,
  /// [10..11] field and source radii,
  /// [12]    packed (field layer, source layer).
  std::array<std::int64_t, 13> q{};
  std::uint64_t hash = 0;

  friend bool operator==(const PairSignature&, const PairSignature&) = default;
};

struct PairSignatureHash {
  [[nodiscard]] std::size_t operator()(const PairSignature& s) const noexcept {
    return static_cast<std::size_t>(s.hash);
  }
};

/// Signature of the ordered pair (field, source). The ordering matters: the
/// cached block is reused verbatim, and endpoint/DoF labels follow the
/// canonical isometry, so only pairs with matching role and endpoint order
/// may share a key. Swapped roles are related by a transpose — exploited
/// separately by make_canonical_pair_signature below.
[[nodiscard]] PairSignature make_pair_signature(const BemElement& field,
                                                const BemElement& source,
                                                double quantum = kDefaultCongruenceQuantum);

/// Galerkin reciprocity: with identical test and trial families the block of
/// the swapped ordered pair is the transpose, R^{alpha beta} = (R^{beta
/// alpha})^T. That is exact in exact arithmetic; numerically the outer-Gauss
/// / inner-analytic split breaks it by the outer quadrature error, which on
/// the bench grids measures ~1e-4 relative for pairs closer than two element
/// lengths, ~4e-13 at two-to-three lengths, and <= 6e-14 beyond three. Only
/// past this ratio may a cached block be replayed transposed without
/// violating the 1e-12 cache-on/cache-off parity contract.
inline constexpr double kTransposeSeparationRatio = 3.0;

/// The measured-decay separation predicate behind that ratio: true when a
/// separation distance is at least kTransposeSeparationRatio times the
/// longest element length involved. Shared by the congruence cache's
/// role-canonical gate (midpoint separation of one pair) and the far-field
/// admissibility partition (bounding-box separation of two element
/// clusters, which lower-bounds every crossing pair's midpoint separation),
/// so the two gates cannot drift apart.
[[nodiscard]] inline bool transpose_separated(double separation, double longest_element_length) {
  return separation >= kTransposeSeparationRatio * longest_element_length;
}

/// Role-canonical signature: the lexicographically smaller of the (field,
/// source) and (source, field) ordered signatures, so both orientations of a
/// congruence class share one cache entry. `transposed` records whether the
/// swapped order won — the stored block is then kept in canonical
/// orientation and transposed back on replay. Pairs closer than
/// kTransposeSeparationRatio element lengths keep the ordered signature
/// (transposed == false): for them the transpose identity only holds to
/// quadrature accuracy, far above the cache parity tolerance.
struct CanonicalPairSignature {
  PairSignature signature;
  bool transposed = false;
};

[[nodiscard]] CanonicalPairSignature make_canonical_pair_signature(
    const BemElement& field, const BemElement& source,
    double quantum = kDefaultCongruenceQuantum);

}  // namespace ebem::bem
